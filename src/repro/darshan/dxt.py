"""Darshan eXtended Tracing (DXT) — the paper's future-work extension.

The paper works from standard Darshan counters and "leave[s] working with
Darshan DXT traces as future work" (§II-A).  This module implements that
extension: per-operation event records (file, rank, operation, offset,
length, start/end time — the fields DXT captures), a collector that
attaches to the simulated runtime alongside the counter instrumentation,
a ``darshan-dxt-parser``-style text rendering (and its inverse), and the
temporal analysis a DXT-aware IOAgent summary category can feed the LLM.

Segments are stored columnar (:class:`~repro.darshan.segtable.
SegmentTable`, one numpy array per field) and every kernel here is a
vectorized array sweep — per-rank reductions via ``np.bincount`` on rank
codes, concurrency via a sorted event-delta prefix sum, idle analysis via
sorted interval arrays and ``np.maximum.accumulate``, file skew via
grouped reductions on path codes.  The scalar per-object reference
implementations these were validated against live in
:mod:`repro.darshan.dxt_reference`.
"""

from __future__ import annotations

import numpy as np

from repro.darshan.segtable import (
    NO_OST,
    READ_CODE,
    DxtSegment,
    SegmentTable,
    SegmentTableBuilder,
    as_table,
    group_bounds,
)
from repro.llm.facts import Fact
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import API, IOOp, OpKind

__all__ = [
    "DxtSegment",
    "SegmentTable",
    "DxtCollector",
    "render_dxt_text",
    "parse_dxt_text",
    "dxt_digest",
    "dxt_timeline_facts",
    "app_level_segments",
    "dxt_temporal_facts",
    "cached_temporal_facts",
]


_MODULE_TAG = {API.POSIX: "X_POSIX", API.MPIIO: "X_MPIIO", API.STDIO: "X_STDIO"}
_DATA_KINDS = frozenset({OpKind.READ, OpKind.WRITE})

DXT_TEXT_HEADER = "# DXT trace (module, rank, wt/rd, segment, offset, length, start, end, ost)"


class DxtCollector:
    """Observer capturing per-operation segments from the runtime.

    Unlike the counter instrumentation, DXT keeps *every* data operation,
    which is why real deployments leave it off by default (the overhead
    the paper mentions).  Segments accumulate into chunked columnar
    buffers (:class:`~repro.darshan.segtable.SegmentTableBuilder`) — no
    per-operation object allocation — and ``segments`` exposes them as a
    :class:`SegmentTable`.  ``max_segments`` bounds memory like Darshan's
    own per-record segment limit; excess operations are counted but not
    stored.
    """

    def __init__(self, max_segments: int = 1_000_000) -> None:
        if max_segments <= 0:
            raise ValueError("max_segments must be positive")
        self.max_segments = max_segments
        self._builder = SegmentTableBuilder()
        self._table: SegmentTable | None = None
        self.dropped = 0

    def on_op(self, op: IOOp, t_start: float, t_end: float, fs: LustreFileSystem | None) -> None:
        """Record data operations; metadata ops are not DXT segments.

        When the filesystem serving the path is known, the segment is
        stamped with its serving OST id (the server-attribution column,
        like real Lustre DXT's per-segment OST list); otherwise the
        segment stays unattributed, as in parsed text traces.
        """
        if op.kind not in _DATA_KINDS:
            return
        if len(self._builder) >= self.max_segments:
            self.dropped += 1
            return
        self._builder.append(
            _MODULE_TAG[op.api],
            op.rank,
            op.path,
            "read" if op.kind is OpKind.READ else "write",
            op.offset,
            op.size,
            t_start,
            t_end,
            fs.serving_ost(op.path, op.offset) if fs is not None else None,
        )

    @property
    def segments(self) -> SegmentTable:
        """The collected segments as a columnar table (memoized per count)."""
        if self._table is None or len(self._table) != len(self._builder):
            self._table = self._builder.build()
        return self._table

    def by_rank(self) -> dict[int, list[DxtSegment]]:
        """Segments grouped per rank, preserving issue order."""
        out: dict[int, list[DxtSegment]] = {}
        for seg in self.segments:
            out.setdefault(seg.rank, []).append(seg)
        return out


# ---------------------------------------------------------------------------
# Text serialization (darshan-dxt-parser format) and content digest
# ---------------------------------------------------------------------------


def render_dxt_text(segments) -> str:
    """Render segments in darshan-dxt-parser's tabular format."""
    table = as_table(segments)
    lines = [DXT_TEXT_HEADER]
    if len(table):
        # Per-stream segment index = cumulative count within each
        # (module, rank, path) stream, in issue order — computed as a
        # grouped running count instead of a per-row dict sweep.
        stacked = np.stack(
            [table.module_code.astype(np.int64), table.rank, table.path_code.astype(np.int64)]
        )
        _, inverse = np.unique(stacked, axis=1, return_inverse=True)
        inverse = inverse.ravel()
        order, firsts, counts = group_bounds(inverse)
        within = np.empty(inverse.size, dtype=np.int64)
        within[order] = np.arange(inverse.size) - np.repeat(firsts, counts)
        indices = within.tolist()
        modules, paths, operations = table.modules, table.paths, table.operations
        rows = zip(
            table.module_code.tolist(),
            table.rank.tolist(),
            table.op_code.tolist(),
            table.offset.tolist(),
            table.length.tolist(),
            table.start.tolist(),
            table.end.tolist(),
            table.ost.tolist(),
            table.path_code.tolist(),
        )
        for i, (m, rank, o, offset, length, start, end, ost, p) in enumerate(rows):
            ost_token = "-" if ost == NO_OST else str(ost)
            lines.append(
                f"{modules[m]:8s} {rank:5d} {operations[o]:5s} {indices[i]:7d} "
                f"{offset:12d} {length:10d} {start:10.4f} {end:10.4f} {ost_token:>4s}"
                f"  {paths[p]}"
            )
    return "\n".join(lines) + "\n"


def parse_dxt_text(
    text: str,
    *,
    lenient: bool = False,
    skipped: list[tuple[int, str, str]] | None = None,
) -> SegmentTable:
    """Parse :func:`render_dxt_text` output back into a segment table.

    The inverse of the text rendering, so exported traces keep the
    temporal channel.  Start/end times are quantized to the rendering's
    1e-4 s resolution; integer fields round-trip exactly, including the
    server-attribution ``ost`` column (``-`` marks an unattributed
    segment).  Nine-field lines — the pre-ost export format — still parse,
    degrading to an unattributed table.  Comment and blank lines are
    skipped, matching the counter-text parser's tolerance.

    ``lenient=True`` skips malformed segment lines (truncated, garbled,
    unparseable numbers) instead of raising; each drop is appended to
    ``skipped`` (when given) as ``(lineno, line, reason)`` so callers can
    fold them into a :class:`~repro.darshan.parser.ParseReport`.
    """
    def _is_ost_token(token: str) -> bool:
        return token == "-" or token.isdigit()

    def _parse_line(line: str, lineno: int) -> tuple:
        parts = line.split(None, 9)
        if len(parts) == 9 or (len(parts) == 10 and not _is_ost_token(parts[8])):
            # A legacy (pre-ost) export line: either exactly 9 fields, or
            # more because its path contains whitespace — re-split with
            # the path last and mark the segment unattributed.
            legacy = line.split(None, 8)
            parts = legacy[:8] + ["-"] + legacy[8:]
        if len(parts) != 10:
            raise ValueError(
                f"DXT line {lineno}: expected 9 or 10 whitespace-separated fields, "
                f"got {len(parts)}"
            )
        module, rank, operation, _index, offset, length, start, end, ost, path = parts
        if operation not in ("read", "write"):
            raise ValueError(
                f"DXT line {lineno}: unknown operation {operation!r} (expected read/write)"
            )
        return (
            module,
            int(rank),
            path,
            operation,
            int(offset),
            int(length),
            float(start),
            float(end),
            None if ost == "-" else int(ost),
        )

    builder = SegmentTableBuilder()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            fields = _parse_line(line, lineno)
        except ValueError as exc:
            if not lenient:
                raise
            if skipped is not None:
                skipped.append((lineno, line, str(exc)))
            continue
        builder.append(*fields)
    return builder.build()


def dxt_digest(segments) -> str:
    """Fast stable content digest of a segment table.

    Hot path of the service cache (every lookup digests the trace), so
    the table's column buffers are hashed directly plus the compact
    string dictionaries — no per-segment iteration, no text rendering.
    """
    return as_table(segments).digest()


# ---------------------------------------------------------------------------
# Timeline analysis (phases and bursts)
# ---------------------------------------------------------------------------


def dxt_timeline_facts(
    segments,
    n_bins: int = 20,
    burst_threshold: float = 3.0,
) -> list[Fact]:
    """Timeline analysis: I/O phases and bursts, as LLM-ready facts.

    Bins the run into ``n_bins`` equal time slices, finds slices whose
    traffic exceeds ``burst_threshold``x the mean (checkpoint-style
    bursts), and reports the read->write phase structure — the kind of
    temporal insight counter-only Darshan cannot provide.
    """
    table = as_table(segments)
    if not len(table):
        return []
    starts = table.start
    t0 = float(starts.min())
    t1 = float(table.end.max())
    span = max(t1 - t0, 1e-9)
    lengths = table.length.astype(np.float64)
    bins = np.minimum(((starts - t0) / span * n_bins).astype(int), n_bins - 1)
    traffic = np.bincount(bins, weights=lengths, minlength=n_bins)
    mean_traffic = traffic.mean()
    n_bursts = (
        int(np.count_nonzero(traffic > burst_threshold * mean_traffic)) if mean_traffic > 0 else 0
    )

    # Phase signature: midpoint of read traffic vs write traffic.  Proper
    # boolean masks with explicit empty guards: a op kind with segments
    # but zero bytes still counts as present (and an empty selection can
    # never reach np.mean, which would yield NaN).
    read_mask = table.op_code == READ_CODE
    has_reads = bool(read_mask.any())
    has_writes = bool((~read_mask).any())
    read_mid = float(starts[read_mask].mean()) if has_reads else t0
    write_mid = float(starts[~read_mask].mean()) if has_writes else t0
    phase = "read-then-write" if read_mid < write_mid else "write-then-read"
    if not (has_reads and has_writes):
        phase = "read-only" if has_reads else "write-only"

    return [
        Fact(
            "dxt_timeline",
            {
                "n_segments": len(table),
                "span_s": float(span),
                "n_bursts": n_bursts,
                "peak_to_mean": float(traffic.max() / mean_traffic) if mean_traffic else 0.0,
                "phase": phase,
            },
        )
    ]


# ---------------------------------------------------------------------------
# Temporal evidence extraction (the channel counters cannot provide)
# ---------------------------------------------------------------------------


def _app_level_mask(table: SegmentTable) -> np.ndarray:
    """Row mask selecting segments at the interface the application called."""
    module_codes = {name: code for code, name in enumerate(table.modules)}
    posix = module_codes.get("X_POSIX")
    mpiio = module_codes.get("X_MPIIO")
    if posix is None or mpiio is None:
        return np.ones(len(table), dtype=bool)
    mpiio_paths = np.unique(table.path_code[table.module_code == mpiio])
    lowered = (table.module_code == posix) & np.isin(table.path_code, mpiio_paths)
    return ~lowered


def app_level_segments(segments) -> SegmentTable:
    """Segments at the interface the application called.

    MPI-IO operations lower to POSIX transfers (independent 1:1, collectives
    through aggregators), so a file with X_MPIIO segments also carries
    X_POSIX ones that describe ROMIO's work, not the application's.  Rank
    analysis over the raw stream would mistake collective-buffering
    aggregators for stragglers; dropping lowered POSIX segments sees through
    them, the same way counter-level rank analysis prefers MPIIO records.
    """
    table = as_table(segments)
    mask = _app_level_mask(table)
    if mask.all():
        return table
    return table.take(mask)


class _SortedEvents:
    """One time-sorted (start, +1) / (end, -1) event array for a table.

    The concurrency and idle kernels both need the table's events in time
    order; sharing one sort removes the double lexsort the PR 4 ROADMAP
    flagged.  The stable argsort over ``[starts..., ends...]`` places
    starts before ends at equal timestamps, so the running ``cumsum`` of
    ``deltas`` is a true non-negative in-flight count and busy windows
    never split at touching boundaries.  Quantities that depend on the
    *other* tie order (the scalar reference's peak-in-flight counts ends
    first) are recovered at distinct-time run boundaries, where the order
    of equal-time events cannot matter.
    """

    __slots__ = ("t", "deltas", "row")

    def __init__(self, table: SegmentTable) -> None:
        n = len(table)
        times = np.concatenate([table.start, table.end])
        order = np.argsort(times, kind="stable")
        self.t = times[order]
        self.deltas = np.where(order < n, 1, -1).astype(np.int64)
        self.row = np.where(order < n, order, order - n)

    def subset(self, row_mask: np.ndarray) -> "_SortedEvents":
        """Events of a row subset, still sorted (a filtered sorted array
        stays sorted, with the same within-tie ordering)."""
        keep = row_mask[self.row]
        sub = _SortedEvents.__new__(_SortedEvents)
        sub.t = self.t[keep]
        sub.deltas = self.deltas[keep]
        sub.row = self.row[keep]
        return sub

    def run_ends(self) -> np.ndarray:
        """Mask of the last event at each distinct timestamp."""
        mask = np.empty(self.t.size, dtype=bool)
        if mask.size:
            mask[:-1] = self.t[1:] > self.t[:-1]
            mask[-1] = True
        return mask

    def busy_windows(self) -> tuple[np.ndarray, np.ndarray]:
        """Disjoint merged busy intervals, from the shared event sort.

        Equivalent to the classic interval-merge sweep: a window opens at
        a start event seen while nothing is in flight and closes when the
        in-flight count returns to zero.  Touching intervals never reach
        zero in between (starts sort first at ties), so they fuse exactly
        like the merge sweep fuses them.
        """
        inflight = np.cumsum(self.deltas)
        opened = np.concatenate([[0], inflight[:-1]]) == 0
        opens = (self.deltas > 0) & opened
        closes = inflight == 0
        return self.t[opens], self.t[closes]


def _merged_intervals(start: np.ndarray, end: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Merge (start, end) interval arrays into disjoint busy windows.

    Sort by (start, end), carry the running maximum end forward, and cut a
    new window wherever the next start exceeds it — the vectorized
    formulation of the classic merge sweep.
    """
    order = np.lexsort((end, start))
    s = start[order]
    e = end[order]
    running_end = np.maximum.accumulate(e)
    window_starts = np.empty(s.size, dtype=bool)
    window_starts[0] = True
    window_starts[1:] = s[1:] > running_end[:-1]
    firsts = np.flatnonzero(window_starts)
    lasts = np.concatenate([firsts[1:] - 1, [s.size - 1]])
    return s[firsts], running_end[lasts]


def _busy_coverage(busy_start: np.ndarray, busy_end: np.ndarray, t) -> np.ndarray:
    """Total busy time before ``t``, for disjoint sorted busy intervals."""
    t = np.asarray(t, dtype=np.float64)
    prefix = np.concatenate([[0.0], np.cumsum(busy_end - busy_start)])
    idx = np.searchsorted(busy_start, t, side="right")
    # Interval idx-1 starts at or before t; trim the part extending past t.
    prev = np.maximum(idx - 1, 0)
    overshoot = np.where(idx > 0, np.maximum(busy_end[prev] - np.maximum(t, busy_start[prev]), 0.0), 0.0)
    return prefix[idx] - overshoot


def _rank_groups(table: SegmentTable) -> tuple[np.ndarray, np.ndarray]:
    """(sorted unique ranks, per-segment group index)."""
    ranks, inverse = np.unique(table.rank, return_inverse=True)
    return ranks, inverse.ravel()


def _rank_skew_fact(app: SegmentTable) -> Fact | None:
    """Per-rank time skew: who occupies the longest I/O window, and why.

    Three ratios versus the median active rank: wall-clock span (first
    start to last end), busy I/O time, and byte volume.  A straggler shows
    span or time skew with the byte ratio pinned near 1.0 — the imbalance
    counters cannot see.
    """
    ranks, inverse = _rank_groups(app)
    if ranks.size < 4:
        return None
    times = np.bincount(inverse, weights=app.durations)
    volumes = np.bincount(inverse, weights=app.length.astype(np.float64))
    order, firsts, _counts = group_bounds(inverse)
    spans = (
        np.maximum.reduceat(app.end[order], firsts)
        - np.minimum.reduceat(app.start[order], firsts)
    )
    slowest = int(np.argmax(spans))
    med_span = float(np.median(spans))
    med_time = float(np.median(times))
    med_vol = float(np.median(volumes))
    if med_span <= 0 or med_time <= 0 or med_vol <= 0:
        return None
    return Fact(
        "dxt_rank_skew",
        {
            "slowest_rank": int(ranks[slowest]),
            "span_skew": float(spans[slowest] / med_span),
            "time_skew": float(times[slowest] / med_time),
            "bytes_ratio": float(volumes[slowest] / med_vol),
            "nprocs": int(ranks.size),
        },
    )


def _concurrency_fact(app: SegmentTable, events: _SortedEvents) -> Fact | None:
    """Mean/peak operations in flight while any I/O is outstanding.

    With N ranks doing independent I/O the mean sits near N; a mean near
    1.0 across many active ranks means the accesses are serialized — the
    lock-convoy signature no counter records.  One event-delta prefix sum
    over the shared sorted event array.
    """
    active_ranks = int(np.unique(app.rank).size)
    if active_ranks < 4:
        return None
    t = events.t
    inflight = np.cumsum(events.deltas)
    dt = np.diff(t)
    during = inflight[:-1]
    active = during > 0
    busy_time = float(dt[active].sum())
    if busy_time <= 0:
        return None
    weighted = float((during[active] * dt[active]).sum())
    # The scalar sweep sorts ends before starts at ties, so its peak is
    # the count settled between distinct timestamps — read the prefix sum
    # at run boundaries, where equal-time ordering cannot matter.
    peak = inflight[events.run_ends()].max(initial=0)
    return Fact(
        "dxt_concurrency",
        {
            "mean_inflight": float(weighted / busy_time),
            "peak_inflight": int(peak),
            "active_ranks": active_ranks,
        },
    )


def _idle_fact(raw: SegmentTable, events: _SortedEvents) -> Fact | None:
    """Idle-gap structure of the I/O timeline.

    Global gaps (no operation in flight anywhere) catch interference-style
    stalls.  ``stalled_ranks`` counts ranks that spend >= 25% of the span
    waiting *while other ranks kept doing I/O* — which distinguishes a
    producer/consumer hand-off stall from a deliberate all-ranks compute
    phase (where nobody is busy, so the waiting does not count).  The
    global busy windows come from the event sort shared with the
    concurrency kernel.
    """
    if not len(raw):
        return None
    busy_start, busy_end = events.busy_windows()
    t0 = float(busy_start[0])
    t1 = float(busy_end[-1])
    span = t1 - t0
    if span <= 0:
        return None
    gap_lo = busy_end[:-1]
    gap_hi = busy_start[1:]
    significant = (gap_hi - gap_lo) > 0.02 * span
    gap_sizes = (gap_hi - gap_lo)[significant]
    idle = float(gap_sizes.sum())

    ranks, inverse = _rank_groups(raw)
    order, firsts, counts = group_bounds(inverse)
    bounds = np.concatenate([firsts, [inverse.size]])
    starts_sorted = raw.start[order]
    ends_sorted = raw.end[order]
    stalled = 0
    for g in range(ranks.size):
        lo, hi = bounds[g], bounds[g + 1]
        rank_start, rank_end = _merged_intervals(starts_sorted[lo:hi], ends_sorted[lo:hi])
        # Leading wait plus internal gaps; trailing idle (an early finisher)
        # is not a stall.
        wait_lo = np.concatenate([[t0], rank_end[:-1]])
        wait_hi = np.concatenate([[rank_start[0]], rank_start[1:]])
        covered = float(
            (
                _busy_coverage(busy_start, busy_end, wait_hi)
                - _busy_coverage(busy_start, busy_end, wait_lo)
            ).sum()
        )
        if covered >= 0.25 * span:
            stalled += 1
    return Fact(
        "dxt_idle",
        {
            "span_s": float(span),
            "idle_fraction": float(idle / span),
            "n_gaps": int(np.count_nonzero(significant)),
            "longest_gap_s": float(gap_sizes.max(initial=0.0)),
            "stalled_ranks": stalled,
        },
    )


def _file_skew_fact(app: SegmentTable) -> Fact | None:
    """Per-file effective throughput skew among comparably-accessed files.

    Files are bucketed by mean request size (throughput legitimately
    differs between a 4 KiB log stream and 1 MiB bulk data); within the
    dominant bucket, one file sustaining a fraction of its peers' rate
    points at the server(s) behind it — a slow or overloaded OST that byte
    counters, being perfectly balanced, never show.
    """
    if not len(app):
        return None
    n_paths = len(app.paths)
    counts = np.bincount(app.path_code, minlength=n_paths)
    nbytes = np.bincount(app.path_code, weights=app.length.astype(np.float64), minlength=n_paths)
    busy = np.bincount(app.path_code, weights=app.durations, minlength=n_paths)
    eligible = np.flatnonzero((counts >= 8) & (nbytes >= 1024 * 1024) & (busy > 0))
    if eligible.size == 0:
        return None
    buckets = np.log2(np.maximum(1.0, nbytes[eligible] / counts[eligible])).astype(np.int64)
    unique_buckets, bucket_of = np.unique(buckets, return_inverse=True)
    bucket_of = bucket_of.ravel()
    totals = np.bincount(bucket_of, weights=nbytes[eligible])
    # Ties on total bytes keep the bucket whose first eligible path was
    # touched earliest — the scalar sweep's dict-insertion-order max().
    tied = np.flatnonzero(totals == totals.max())
    first_seen = np.full(unique_buckets.size, bucket_of.size, dtype=np.int64)
    np.minimum.at(first_seen, bucket_of, np.arange(bucket_of.size))
    best = int(tied[np.argmin(first_seen[tied])])
    # Path codes follow first-touch order, so the group keeps the same
    # ordering (and argmin tie-breaking) as the per-file dict sweep.
    group = eligible[bucket_of == best]
    if group.size < 4:
        return None
    rates = nbytes[group] / busy[group] / (1024 * 1024)
    median = float(np.median(rates))
    slow = int(np.argmin(rates))
    slow_mbps = float(rates[slow])
    if slow_mbps <= 0:
        return None
    return Fact(
        "dxt_file_skew",
        {
            "n_files": int(group.size),
            "slow_path": app.paths[int(group[slow])],
            "slow_mbps": slow_mbps,
            "median_mbps": median,
            "ratio": float(median / slow_mbps),
        },
    )


# Per-OST eligibility: an OST participates in server attribution once it
# served at least this many requests / bytes of the dominant size bucket,
# and the facts only emit with at least 4 eligible OSTs (a "median" over
# fewer servers is not a population to stand out from).
_OST_MIN_OPS = 4
_OST_MIN_BYTES = 1024 * 1024
# Slow servers cluster at the bottom of the rate range: every OST within
# 25% of the slowest one's rate is part of the degraded set.
_OST_SLOW_BAND = 1.25


def _ost_facts(app: SegmentTable) -> list[Fact]:
    """Per-OST server attribution: service-time skew and slow-server rates.

    Uses the ``ost`` column stamped by the collector; segments without
    attribution (parsed text traces, paths off the mount) are ignored, so
    counter-only logs degrade to no server facts at all.  Rates compare
    only within the dominant request-size bucket — like the file-skew
    kernel — because a log stream's 4 KiB requests legitimately sustain
    less bandwidth per server than 1 MiB bulk transfers.

    Two facts: ``dxt_ost_skew`` (the busiest server's share of service
    time versus its share of bytes — a degraded server absorbs time
    without absorbing traffic) and ``dxt_ost_latency`` (the slow-server
    set: every OST whose effective rate sits within 25% of the slowest
    one's, against the median OST's rate).
    """
    attributed = app.take(app.ost != NO_OST)
    if not len(attributed):
        return []
    lengths = attributed.length.astype(np.float64)
    buckets = np.log2(np.maximum(1.0, lengths)).astype(np.int64)
    unique_buckets, bucket_of = np.unique(buckets, return_inverse=True)
    bucket_of = bucket_of.ravel()
    totals = np.bincount(bucket_of, weights=lengths)
    # Ties on total bytes keep the bucket touched earliest, matching the
    # scalar sweep's dict-insertion-order max().
    tied = np.flatnonzero(totals == totals.max())
    first_seen = np.full(unique_buckets.size, bucket_of.size, dtype=np.int64)
    np.minimum.at(first_seen, bucket_of, np.arange(bucket_of.size))
    best = int(tied[np.argmin(first_seen[tied])])
    sel = attributed.take(bucket_of == best)

    osts, inverse = np.unique(sel.ost, return_inverse=True)
    inverse = inverse.ravel()
    counts = np.bincount(inverse)
    nbytes = np.bincount(inverse, weights=sel.length.astype(np.float64))
    busy = np.bincount(inverse, weights=sel.durations)
    eligible = np.flatnonzero(
        (counts >= _OST_MIN_OPS) & (nbytes >= _OST_MIN_BYTES) & (busy > 0)
    )
    if eligible.size < 4:
        return []
    e_osts = osts[eligible]
    e_bytes = nbytes[eligible]
    e_busy = busy[eligible]

    time_share = e_busy / float(e_busy.sum())
    bytes_share = e_bytes / float(e_bytes.sum())
    hot = int(np.argmax(time_share))
    rates = e_bytes / e_busy / (1024 * 1024)
    median = float(np.median(rates))
    slow_mbps = float(rates.min())
    slow = np.flatnonzero(rates <= _OST_SLOW_BAND * slow_mbps)
    return [
        Fact(
            "dxt_ost_skew",
            {
                "n_osts": int(eligible.size),
                "hot_ost": int(e_osts[hot]),
                "time_share": float(time_share[hot]),
                "bytes_share": float(bytes_share[hot]),
                "skew": float(time_share[hot] / bytes_share[hot]),
            },
        ),
        Fact(
            "dxt_ost_latency",
            {
                "n_osts": int(eligible.size),
                "slow_osts": [int(o) for o in e_osts[slow]],
                "slow_mbps": slow_mbps,
                "median_mbps": median,
                "ratio": float(median / slow_mbps),
            },
        ),
    ]


def dxt_temporal_facts(segments, n_bins: int = 20) -> list[Fact]:
    """Every temporal fact the DXT channel supports, as LLM-ready facts.

    Combines the timeline/burst summary with per-rank time skew,
    concurrency (serialization), idle-gap structure, per-file throughput
    skew, and per-OST server attribution — the evidence grounding
    time-domain pathologies (stragglers, lock convoys, interference
    stalls, slow-OST hotspots, degraded servers) that aggregate counters
    are blind to.
    """
    table = as_table(segments)
    if not len(table):
        return []
    app_mask = _app_level_mask(table)
    app = table if app_mask.all() else table.take(app_mask)
    # One event sort serves both time-domain kernels; the concurrency
    # kernel reads the app-level subset of it (still sorted).
    events = _SortedEvents(table)
    app_events = events if app is table else events.subset(app_mask)
    facts = dxt_timeline_facts(table, n_bins=n_bins)
    for fact in (
        _rank_skew_fact(app),
        _concurrency_fact(app, app_events),
        # Idle analysis sees the raw stream: a collective-buffering
        # aggregator between its application-level calls is busy moving
        # its group's data (lowered POSIX segments), not stalled.
        _idle_fact(table, events),
        _file_skew_fact(app),
    ):
        if fact is not None:
            facts.append(fact)
    facts.extend(_ost_facts(app))
    return facts


def cached_temporal_facts(log) -> list[Fact]:
    """Temporal facts of a :class:`~repro.darshan.log.DarshanLog`, memoized.

    Several consumers extract the same facts from the same log — the
    ``temporal`` pipeline stage (once per diagnosing tool) and each of
    Drishti's DXT triggers — and the segment sweeps still sort the event
    arrays, so the result is computed once and parked on the log (segments
    are immutable after collection, like ``dxt_digest_cache``).
    """
    if not log.dxt_segments:
        return []
    if log.dxt_facts_cache is None:
        log.dxt_facts_cache = dxt_temporal_facts(log.dxt_segments)
    return list(log.dxt_facts_cache)
