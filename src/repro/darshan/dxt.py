"""Darshan eXtended Tracing (DXT) — the paper's future-work extension.

The paper works from standard Darshan counters and "leave[s] working with
Darshan DXT traces as future work" (§II-A).  This module implements that
extension: per-operation event records (file, rank, operation, offset,
length, start/end time — the fields DXT captures), a collector that
attaches to the simulated runtime alongside the counter instrumentation,
a ``darshan-dxt-parser``-style text rendering, and timeline analysis
(phase segmentation and burst detection) that a DXT-aware IOAgent summary
category can feed the LLM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.facts import Fact
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import API, IOOp, OpKind

__all__ = ["DxtSegment", "DxtCollector", "render_dxt_text", "dxt_timeline_facts"]


@dataclass(frozen=True, slots=True)
class DxtSegment:
    """One traced I/O operation (a DXT_POSIX / DXT_MPIIO segment)."""

    module: str  # 'X_POSIX' | 'X_MPIIO' | 'X_STDIO'
    rank: int
    path: str
    operation: str  # 'read' | 'write'
    offset: int
    length: int
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


_MODULE_TAG = {API.POSIX: "X_POSIX", API.MPIIO: "X_MPIIO", API.STDIO: "X_STDIO"}


class DxtCollector:
    """Observer capturing per-operation segments from the runtime.

    Unlike the counter instrumentation, DXT keeps *every* data operation,
    which is why real deployments leave it off by default (the overhead
    the paper mentions).  ``max_segments`` bounds memory like Darshan's
    own per-record segment limit; excess operations are counted but not
    stored.
    """

    def __init__(self, max_segments: int = 1_000_000) -> None:
        if max_segments <= 0:
            raise ValueError("max_segments must be positive")
        self.max_segments = max_segments
        self.segments: list[DxtSegment] = []
        self.dropped = 0

    def on_op(self, op: IOOp, t_start: float, t_end: float, fs: LustreFileSystem | None) -> None:
        """Record data operations; metadata ops are not DXT segments."""
        if op.kind not in (OpKind.READ, OpKind.WRITE):
            return
        if len(self.segments) >= self.max_segments:
            self.dropped += 1
            return
        self.segments.append(
            DxtSegment(
                module=_MODULE_TAG[op.api],
                rank=op.rank,
                path=op.path,
                operation="read" if op.kind is OpKind.READ else "write",
                offset=op.offset,
                length=op.size,
                start_time=t_start,
                end_time=t_end,
            )
        )

    def by_rank(self) -> dict[int, list[DxtSegment]]:
        """Segments grouped per rank, preserving issue order."""
        out: dict[int, list[DxtSegment]] = {}
        for seg in self.segments:
            out.setdefault(seg.rank, []).append(seg)
        return out


def render_dxt_text(segments: list[DxtSegment]) -> str:
    """Render segments in darshan-dxt-parser's tabular format."""
    lines = ["# DXT trace (module, rank, wt/rd, segment, offset, length, start, end)"]
    per_stream: dict[tuple[str, int, str], int] = {}
    for seg in segments:
        key = (seg.module, seg.rank, seg.path)
        index = per_stream.get(key, 0)
        per_stream[key] = index + 1
        lines.append(
            f"{seg.module:8s} {seg.rank:5d} {seg.operation:5s} {index:7d} "
            f"{seg.offset:12d} {seg.length:10d} {seg.start_time:10.4f} {seg.end_time:10.4f}"
            f"  {seg.path}"
        )
    return "\n".join(lines) + "\n"


def dxt_timeline_facts(
    segments: list[DxtSegment],
    n_bins: int = 20,
    burst_threshold: float = 3.0,
) -> list[Fact]:
    """Timeline analysis: I/O phases and bursts, as LLM-ready facts.

    Bins the run into ``n_bins`` equal time slices, finds slices whose
    traffic exceeds ``burst_threshold``x the mean (checkpoint-style
    bursts), and reports the read->write phase structure — the kind of
    temporal insight counter-only Darshan cannot provide.
    """
    if not segments:
        return []
    t0 = min(s.start_time for s in segments)
    t1 = max(s.end_time for s in segments)
    span = max(t1 - t0, 1e-9)
    starts = np.array([s.start_time for s in segments])
    lengths = np.array([s.length for s in segments], dtype=np.float64)
    bins = np.minimum(((starts - t0) / span * n_bins).astype(int), n_bins - 1)
    traffic = np.bincount(bins, weights=lengths, minlength=n_bins)
    mean_traffic = traffic.mean()
    bursts = (
        np.nonzero(traffic > burst_threshold * mean_traffic)[0] if mean_traffic > 0 else []
    )

    read_bytes = float(sum(s.length for s in segments if s.operation == "read"))
    write_bytes = float(sum(s.length for s in segments if s.operation == "write"))
    # A crude phase signature: midpoint of read traffic vs write traffic.
    read_mid = float(
        np.average(starts[[s.operation == "read" for s in segments]])
        if read_bytes
        else t0
    )
    write_mid = float(
        np.average(starts[[s.operation == "write" for s in segments]])
        if write_bytes
        else t0
    )
    phase = "read-then-write" if read_mid < write_mid else "write-then-read"
    if not read_bytes or not write_bytes:
        phase = "read-only" if read_bytes else "write-only"

    return [
        Fact(
            "dxt_timeline",
            {
                "n_segments": len(segments),
                "span_s": float(span),
                "n_bursts": int(len(bursts)),
                "peak_to_mean": float(traffic.max() / mean_traffic) if mean_traffic else 0.0,
                "phase": phase,
            },
        )
    ]
