"""Darshan eXtended Tracing (DXT) — the paper's future-work extension.

The paper works from standard Darshan counters and "leave[s] working with
Darshan DXT traces as future work" (§II-A).  This module implements that
extension: per-operation event records (file, rank, operation, offset,
length, start/end time — the fields DXT captures), a collector that
attaches to the simulated runtime alongside the counter instrumentation,
a ``darshan-dxt-parser``-style text rendering, and timeline analysis
(phase segmentation and burst detection) that a DXT-aware IOAgent summary
category can feed the LLM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.llm.facts import Fact
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import API, IOOp, OpKind

__all__ = [
    "DxtSegment",
    "DxtCollector",
    "render_dxt_text",
    "dxt_digest",
    "dxt_timeline_facts",
    "app_level_segments",
    "dxt_temporal_facts",
    "cached_temporal_facts",
]


@dataclass(frozen=True, slots=True)
class DxtSegment:
    """One traced I/O operation (a DXT_POSIX / DXT_MPIIO segment)."""

    module: str  # 'X_POSIX' | 'X_MPIIO' | 'X_STDIO'
    rank: int
    path: str
    operation: str  # 'read' | 'write'
    offset: int
    length: int
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


_MODULE_TAG = {API.POSIX: "X_POSIX", API.MPIIO: "X_MPIIO", API.STDIO: "X_STDIO"}


class DxtCollector:
    """Observer capturing per-operation segments from the runtime.

    Unlike the counter instrumentation, DXT keeps *every* data operation,
    which is why real deployments leave it off by default (the overhead
    the paper mentions).  ``max_segments`` bounds memory like Darshan's
    own per-record segment limit; excess operations are counted but not
    stored.
    """

    def __init__(self, max_segments: int = 1_000_000) -> None:
        if max_segments <= 0:
            raise ValueError("max_segments must be positive")
        self.max_segments = max_segments
        self.segments: list[DxtSegment] = []
        self.dropped = 0

    def on_op(self, op: IOOp, t_start: float, t_end: float, fs: LustreFileSystem | None) -> None:
        """Record data operations; metadata ops are not DXT segments."""
        if op.kind not in (OpKind.READ, OpKind.WRITE):
            return
        if len(self.segments) >= self.max_segments:
            self.dropped += 1
            return
        self.segments.append(
            DxtSegment(
                module=_MODULE_TAG[op.api],
                rank=op.rank,
                path=op.path,
                operation="read" if op.kind is OpKind.READ else "write",
                offset=op.offset,
                length=op.size,
                start_time=t_start,
                end_time=t_end,
            )
        )

    def by_rank(self) -> dict[int, list[DxtSegment]]:
        """Segments grouped per rank, preserving issue order."""
        out: dict[int, list[DxtSegment]] = {}
        for seg in self.segments:
            out.setdefault(seg.rank, []).append(seg)
        return out


def render_dxt_text(segments: list[DxtSegment]) -> str:
    """Render segments in darshan-dxt-parser's tabular format."""
    lines = ["# DXT trace (module, rank, wt/rd, segment, offset, length, start, end)"]
    per_stream: dict[tuple[str, int, str], int] = {}
    for seg in segments:
        key = (seg.module, seg.rank, seg.path)
        index = per_stream.get(key, 0)
        per_stream[key] = index + 1
        lines.append(
            f"{seg.module:8s} {seg.rank:5d} {seg.operation:5s} {index:7d} "
            f"{seg.offset:12d} {seg.length:10d} {seg.start_time:10.4f} {seg.end_time:10.4f}"
            f"  {seg.path}"
        )
    return "\n".join(lines) + "\n"


def dxt_digest(segments: list[DxtSegment]) -> str:
    """Fast stable content digest of a segment list.

    Hot path of the service cache (every lookup digests the trace), so
    the segment table is hashed as packed numeric rows plus a compact
    stream dictionary instead of being rendered to text — ~10x cheaper
    than hashing :func:`render_dxt_text` output on large traces.
    """
    import hashlib

    streams: dict[tuple[str, str, str], int] = {}
    rows = np.empty((len(segments), 6), dtype=np.float64)
    for i, seg in enumerate(segments):
        key = (seg.module, seg.path, seg.operation)
        code = streams.setdefault(key, len(streams))
        rows[i] = (code, seg.rank, seg.offset, seg.length, seg.start_time, seg.end_time)
    digest = hashlib.sha256(rows.tobytes())
    digest.update("\x00".join("|".join(key) for key in streams).encode("utf-8"))
    return digest.hexdigest()


def dxt_timeline_facts(
    segments: list[DxtSegment],
    n_bins: int = 20,
    burst_threshold: float = 3.0,
) -> list[Fact]:
    """Timeline analysis: I/O phases and bursts, as LLM-ready facts.

    Bins the run into ``n_bins`` equal time slices, finds slices whose
    traffic exceeds ``burst_threshold``x the mean (checkpoint-style
    bursts), and reports the read->write phase structure — the kind of
    temporal insight counter-only Darshan cannot provide.
    """
    if not segments:
        return []
    t0 = min(s.start_time for s in segments)
    t1 = max(s.end_time for s in segments)
    span = max(t1 - t0, 1e-9)
    starts = np.array([s.start_time for s in segments])
    lengths = np.array([s.length for s in segments], dtype=np.float64)
    bins = np.minimum(((starts - t0) / span * n_bins).astype(int), n_bins - 1)
    traffic = np.bincount(bins, weights=lengths, minlength=n_bins)
    mean_traffic = traffic.mean()
    bursts = (
        np.nonzero(traffic > burst_threshold * mean_traffic)[0] if mean_traffic > 0 else []
    )

    read_bytes = float(sum(s.length for s in segments if s.operation == "read"))
    write_bytes = float(sum(s.length for s in segments if s.operation == "write"))
    # A crude phase signature: midpoint of read traffic vs write traffic.
    read_mid = float(
        np.average(starts[[s.operation == "read" for s in segments]])
        if read_bytes
        else t0
    )
    write_mid = float(
        np.average(starts[[s.operation == "write" for s in segments]])
        if write_bytes
        else t0
    )
    phase = "read-then-write" if read_mid < write_mid else "write-then-read"
    if not read_bytes or not write_bytes:
        phase = "read-only" if read_bytes else "write-only"

    return [
        Fact(
            "dxt_timeline",
            {
                "n_segments": len(segments),
                "span_s": float(span),
                "n_bursts": int(len(bursts)),
                "peak_to_mean": float(traffic.max() / mean_traffic) if mean_traffic else 0.0,
                "phase": phase,
            },
        )
    ]


# ---------------------------------------------------------------------------
# Temporal evidence extraction (the channel counters cannot provide)
# ---------------------------------------------------------------------------


def app_level_segments(segments: list[DxtSegment]) -> list[DxtSegment]:
    """Segments at the interface the application called.

    MPI-IO operations lower to POSIX transfers (independent 1:1, collectives
    through aggregators), so a file with X_MPIIO segments also carries
    X_POSIX ones that describe ROMIO's work, not the application's.  Rank
    analysis over the raw stream would mistake collective-buffering
    aggregators for stragglers; dropping lowered POSIX segments sees through
    them, the same way counter-level rank analysis prefers MPIIO records.
    """
    mpiio_paths = {s.path for s in segments if s.module == "X_MPIIO"}
    return [s for s in segments if s.module != "X_POSIX" or s.path not in mpiio_paths]


def _merged_intervals(spans: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge (start, end) intervals into disjoint busy windows."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


def _overlap(intervals: list[tuple[float, float]], lo: float, hi: float) -> float:
    """Total length of ``intervals`` falling inside ``[lo, hi]``."""
    return sum(max(0.0, min(hi, end) - max(lo, start)) for start, end in intervals)


def _rank_skew_fact(app_segments: list[DxtSegment]) -> Fact | None:
    """Per-rank time skew: who occupies the longest I/O window, and why.

    Three ratios versus the median active rank: wall-clock span (first
    start to last end), busy I/O time, and byte volume.  A straggler shows
    span or time skew with the byte ratio pinned near 1.0 — the imbalance
    counters cannot see.
    """
    by_rank: dict[int, list[DxtSegment]] = {}
    for seg in app_segments:
        by_rank.setdefault(seg.rank, []).append(seg)
    if len(by_rank) < 4:
        return None
    ranks = sorted(by_rank)
    spans = np.array(
        [max(s.end_time for s in by_rank[r]) - min(s.start_time for s in by_rank[r]) for r in ranks]
    )
    times = np.array([sum(s.duration for s in by_rank[r]) for r in ranks])
    volumes = np.array([float(sum(s.length for s in by_rank[r])) for r in ranks])
    slowest = int(np.argmax(spans))
    med_span = float(np.median(spans))
    med_time = float(np.median(times))
    med_vol = float(np.median(volumes))
    if med_span <= 0 or med_time <= 0 or med_vol <= 0:
        return None
    return Fact(
        "dxt_rank_skew",
        {
            "slowest_rank": ranks[slowest],
            "span_skew": float(spans[slowest] / med_span),
            "time_skew": float(times[slowest] / med_time),
            "bytes_ratio": float(volumes[slowest] / med_vol),
            "nprocs": len(ranks),
        },
    )


def _concurrency_fact(app_segments: list[DxtSegment]) -> Fact | None:
    """Mean/peak operations in flight while any I/O is outstanding.

    With N ranks doing independent I/O the mean sits near N; a mean near
    1.0 across many active ranks means the accesses are serialized — the
    lock-convoy signature no counter records.
    """
    active_ranks = len({s.rank for s in app_segments})
    if active_ranks < 4:
        return None
    events: list[tuple[float, int]] = []
    for seg in app_segments:
        events.append((seg.start_time, 1))
        events.append((seg.end_time, -1))
    events.sort()
    inflight = 0
    busy_time = 0.0
    weighted = 0.0
    peak = 0
    prev_t = events[0][0]
    for t, delta in events:
        if inflight > 0:
            busy_time += t - prev_t
            weighted += inflight * (t - prev_t)
        prev_t = t
        inflight += delta
        peak = max(peak, inflight)
    if busy_time <= 0:
        return None
    return Fact(
        "dxt_concurrency",
        {
            "mean_inflight": float(weighted / busy_time),
            "peak_inflight": int(peak),
            "active_ranks": active_ranks,
        },
    )


def _idle_fact(app_segments: list[DxtSegment]) -> Fact | None:
    """Idle-gap structure of the I/O timeline.

    Global gaps (no operation in flight anywhere) catch interference-style
    stalls.  ``stalled_ranks`` counts ranks that spend >= 25% of the span
    waiting *while other ranks kept doing I/O* — which distinguishes a
    producer/consumer hand-off stall from a deliberate all-ranks compute
    phase (where nobody is busy, so the waiting does not count).
    """
    busy = _merged_intervals([(s.start_time, s.end_time) for s in app_segments])
    if not busy:
        return None
    t0, t1 = busy[0][0], busy[-1][1]
    span = t1 - t0
    if span <= 0:
        return None
    gaps = [
        (busy[i][1], busy[i + 1][0])
        for i in range(len(busy) - 1)
        if busy[i + 1][0] - busy[i][1] > 0.02 * span
    ]
    idle = sum(hi - lo for lo, hi in gaps)

    by_rank: dict[int, list[tuple[float, float]]] = {}
    for seg in app_segments:
        by_rank.setdefault(seg.rank, []).append((seg.start_time, seg.end_time))
    stalled = 0
    for spans in by_rank.values():
        rank_busy = _merged_intervals(spans)
        # Leading wait plus internal gaps; trailing idle (an early finisher)
        # is not a stall.
        rank_gaps = [(t0, rank_busy[0][0])]
        rank_gaps += [
            (rank_busy[i][1], rank_busy[i + 1][0]) for i in range(len(rank_busy) - 1)
        ]
        covered_wait = sum(_overlap(busy, lo, hi) for lo, hi in rank_gaps)
        if covered_wait >= 0.25 * span:
            stalled += 1
    return Fact(
        "dxt_idle",
        {
            "span_s": float(span),
            "idle_fraction": float(idle / span),
            "n_gaps": len(gaps),
            "longest_gap_s": float(max((hi - lo for lo, hi in gaps), default=0.0)),
            "stalled_ranks": stalled,
        },
    )


def _file_skew_fact(app_segments: list[DxtSegment]) -> Fact | None:
    """Per-file effective throughput skew among comparably-accessed files.

    Files are bucketed by mean request size (throughput legitimately
    differs between a 4 KiB log stream and 1 MiB bulk data); within the
    dominant bucket, one file sustaining a fraction of its peers' rate
    points at the server(s) behind it — a slow or overloaded OST that byte
    counters, being perfectly balanced, never show.
    """
    per_file: dict[str, tuple[float, float, int]] = {}
    for seg in app_segments:
        nbytes, busy, count = per_file.get(seg.path, (0.0, 0.0, 0))
        per_file[seg.path] = (nbytes + seg.length, busy + seg.duration, count + 1)
    buckets: dict[int, list[tuple[str, float, float]]] = {}
    for path, (nbytes, busy, count) in per_file.items():
        if count < 8 or nbytes < 1024 * 1024 or busy <= 0:
            continue
        bucket = int(np.log2(max(1.0, nbytes / count)))
        buckets.setdefault(bucket, []).append((path, nbytes / busy / (1024 * 1024), nbytes))
    if not buckets:
        return None
    group = max(buckets.values(), key=lambda files: sum(f[2] for f in files))
    if len(group) < 4:
        return None
    rates = np.array([mbps for _, mbps, _ in group])
    median = float(np.median(rates))
    slow_idx = int(np.argmin(rates))
    slow_path, slow_mbps, _ = group[slow_idx]
    if slow_mbps <= 0:
        return None
    return Fact(
        "dxt_file_skew",
        {
            "n_files": len(group),
            "slow_path": slow_path,
            "slow_mbps": float(slow_mbps),
            "median_mbps": median,
            "ratio": float(median / slow_mbps),
        },
    )


def dxt_temporal_facts(segments: list[DxtSegment], n_bins: int = 20) -> list[Fact]:
    """Every temporal fact the DXT channel supports, as LLM-ready facts.

    Combines the timeline/burst summary with per-rank time skew,
    concurrency (serialization), idle-gap structure, and per-file
    throughput skew — the evidence grounding time-domain pathologies
    (stragglers, lock convoys, interference stalls, slow-OST hotspots)
    that aggregate counters are blind to.
    """
    if not segments:
        return []
    app = app_level_segments(segments)
    facts = dxt_timeline_facts(segments, n_bins=n_bins)
    for fact in (
        _rank_skew_fact(app),
        _concurrency_fact(app),
        # Idle analysis sees the raw stream: a collective-buffering
        # aggregator between its application-level calls is busy moving
        # its group's data (lowered POSIX segments), not stalled.
        _idle_fact(segments),
        _file_skew_fact(app),
    ):
        if fact is not None:
            facts.append(fact)
    return facts


def cached_temporal_facts(log) -> list[Fact]:
    """Temporal facts of a :class:`~repro.darshan.log.DarshanLog`, memoized.

    Several consumers extract the same facts from the same log — the
    ``temporal`` pipeline stage (once per diagnosing tool) and each of
    Drishti's DXT triggers — and the segment sweeps are O(n log n), so
    the result is computed once and parked on the log (segments are
    immutable after collection, like ``dxt_digest_cache``).
    """
    if not log.dxt_segments:
        return []
    if log.dxt_facts_cache is None:
        log.dxt_facts_cache = dxt_temporal_facts(log.dxt_segments)
    return list(log.dxt_facts_cache)
