"""Columnar DXT segment storage (structure-of-arrays).

Real DXT tooling (the DXT-explorer lineage) operates on per-segment
*tables*, not per-segment objects: at the segment counts DXT produces
(every data operation of every rank), per-object Python iteration is the
bottleneck long before the analysis itself is.  This module provides that
representation:

* :class:`SegmentTable` — one numpy array per field (``rank``, ``offset``,
  ``length``, ``start``, ``end``) plus interned code columns for the
  string-valued fields (``module`` / ``path`` / ``operation``), each code
  indexing a shared string dictionary.  The table is also a
  ``Sequence[DxtSegment]``, so consumers that want per-segment objects
  (tests, text rendering, debugging) still get them — lazily.
* :class:`SegmentTableBuilder` — chunked column buffers with O(1)
  amortized ``append`` and no per-operation object allocation, which is
  what keeps the always-on :class:`~repro.darshan.dxt.DxtCollector` cheap.

The vectorized temporal kernels in :mod:`repro.darshan.dxt` consume the
columns directly; everything else can keep treating the table as the old
``list[DxtSegment]``.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "DxtSegment",
    "SegmentTable",
    "SegmentTableBuilder",
    "as_table",
    "OPERATIONS",
    "NO_OST",
]

# The operation dictionary is closed (DXT segments are data ops only), so
# every table shares it and the codes are stable across processes.
OPERATIONS: tuple[str, ...] = ("read", "write")
READ_CODE = 0
WRITE_CODE = 1

# The ``ost`` column's "unattributed" code: segments from parsed text
# traces or from paths outside the simulated mount carry no server id,
# exactly like real DXT segments captured on a non-Lustre filesystem.
NO_OST = -1

_CHUNK = 65536


@dataclass(frozen=True, slots=True)
class DxtSegment:
    """One traced I/O operation (a DXT_POSIX / DXT_MPIIO segment).

    ``ost`` is the serving-OST attribution (real Lustre DXT records the
    OST list per segment); ``None`` when the trace carries no server info.
    """

    module: str  # 'X_POSIX' | 'X_MPIIO' | 'X_STDIO'
    rank: int
    path: str
    operation: str  # 'read' | 'write'
    offset: int
    length: int
    start_time: float
    end_time: float
    ost: int | None = None

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


def _dictionary_bytes(*dictionaries: Sequence[str]) -> bytes:
    """Stable encoding of the string dictionaries for content digests.

    Shared by every digest over segment data (the table digest and, via
    :func:`repro.darshan.dxt.dxt_digest`, the service-cache key): entries
    joined by ``|`` within a dictionary, dictionaries separated by NUL.
    """
    return "\x00".join("|".join(d) for d in dictionaries).encode("utf-8")


class SegmentTable(Sequence):
    """Immutable structure-of-arrays segment store.

    Columns (all 1-D, equal length): ``module_code`` (uint8 into
    ``modules``), ``rank`` (int64), ``path_code`` (int32 into ``paths``),
    ``op_code`` (uint8 into :data:`OPERATIONS`), ``offset`` / ``length``
    (int64), ``start`` / ``end`` (float64), ``ost`` (int32 OST id, with
    :data:`NO_OST` marking unattributed segments).  Dictionary codes are
    assigned in first-appearance order, so grouped reductions over codes
    see files and modules in the same order the old per-object sweeps did.
    """

    __slots__ = (
        "modules",
        "paths",
        "module_code",
        "path_code",
        "op_code",
        "rank",
        "offset",
        "length",
        "start",
        "end",
        "ost",
    )

    operations = OPERATIONS

    def __init__(
        self,
        *,
        modules: tuple[str, ...],
        paths: tuple[str, ...],
        module_code: np.ndarray,
        path_code: np.ndarray,
        op_code: np.ndarray,
        rank: np.ndarray,
        offset: np.ndarray,
        length: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        ost: np.ndarray,
    ) -> None:
        self.modules = modules
        self.paths = paths
        self.module_code = module_code
        self.path_code = path_code
        self.op_code = op_code
        self.rank = rank
        self.offset = offset
        self.length = length
        self.start = start
        self.end = end
        self.ost = ost

    # -- construction -------------------------------------------------------

    @classmethod
    def empty(cls) -> "SegmentTable":
        return cls(
            modules=(),
            paths=(),
            module_code=np.empty(0, dtype=np.uint8),
            path_code=np.empty(0, dtype=np.int32),
            op_code=np.empty(0, dtype=np.uint8),
            rank=np.empty(0, dtype=np.int64),
            offset=np.empty(0, dtype=np.int64),
            length=np.empty(0, dtype=np.int64),
            start=np.empty(0, dtype=np.float64),
            end=np.empty(0, dtype=np.float64),
            ost=np.empty(0, dtype=np.int32),
        )

    @classmethod
    def from_segments(cls, segments) -> "SegmentTable":
        """Build a table from an iterable of :class:`DxtSegment`."""
        builder = SegmentTableBuilder()
        for seg in segments:
            builder.append(
                seg.module,
                seg.rank,
                seg.path,
                seg.operation,
                seg.offset,
                seg.length,
                seg.start_time,
                seg.end_time,
                seg.ost,
            )
        return builder.build()

    # -- Sequence[DxtSegment] view ------------------------------------------

    def __len__(self) -> int:
        return int(self.rank.size)

    def __getitem__(self, index: int | slice) -> "DxtSegment | SegmentTable":
        if isinstance(index, slice):
            return self.take(np.arange(len(self))[index])
        i = int(index)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(index)
        ost = int(self.ost[i])
        return DxtSegment(
            module=self.modules[int(self.module_code[i])],
            rank=int(self.rank[i]),
            path=self.paths[int(self.path_code[i])],
            operation=OPERATIONS[int(self.op_code[i])],
            offset=int(self.offset[i]),
            length=int(self.length[i]),
            start_time=float(self.start[i]),
            end_time=float(self.end[i]),
            ost=None if ost == NO_OST else ost,
        )

    def __iter__(self) -> "Iterator[DxtSegment]":
        # Materialize the columns once; much faster than per-index __getitem__.
        modules, paths = self.modules, self.paths
        rows = zip(
            self.module_code.tolist(),
            self.rank.tolist(),
            self.path_code.tolist(),
            self.op_code.tolist(),
            self.offset.tolist(),
            self.length.tolist(),
            self.start.tolist(),
            self.end.tolist(),
            self.ost.tolist(),
        )
        for m, rank, p, o, offset, length, start, end, ost in rows:
            yield DxtSegment(
                module=modules[m],
                rank=rank,
                path=paths[p],
                operation=OPERATIONS[o],
                offset=offset,
                length=length,
                start_time=start,
                end_time=end,
                ost=None if ost == NO_OST else ost,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SegmentTable(n={len(self)}, modules={len(self.modules)}, "
            f"paths={len(self.paths)})"
        )

    # -- columnar operations -------------------------------------------------

    @property
    def durations(self) -> np.ndarray:
        return self.end - self.start

    def take(self, selector) -> "SegmentTable":
        """Row subset (boolean mask or index array), sharing dictionaries."""
        return SegmentTable(
            modules=self.modules,
            paths=self.paths,
            module_code=self.module_code[selector],
            path_code=self.path_code[selector],
            op_code=self.op_code[selector],
            rank=self.rank[selector],
            offset=self.offset[selector],
            length=self.length[selector],
            start=self.start[selector],
            end=self.end[selector],
            ost=self.ost[selector],
        )

    def without_ost(self) -> "SegmentTable":
        """The same timeline with server attribution removed.

        Models a pre-attribution trace (legacy exports, non-Lustre
        deployments): every row keeps its timing but carries
        :data:`NO_OST`.  Tests and benchmarks use it to isolate what the
        ost column alone contributes.
        """
        return SegmentTable(
            modules=self.modules,
            paths=self.paths,
            module_code=self.module_code,
            path_code=self.path_code,
            op_code=self.op_code,
            rank=self.rank,
            offset=self.offset,
            length=self.length,
            start=self.start,
            end=self.end,
            ost=np.full(len(self), NO_OST, dtype=np.int32),
        )

    def digest(self) -> str:
        """Stable content digest, hashing the column buffers directly."""
        h = hashlib.sha256()
        for column in (
            self.module_code,
            self.rank,
            self.path_code,
            self.op_code,
            self.offset,
            self.length,
            self.start,
            self.end,
            self.ost,
        ):
            h.update(np.ascontiguousarray(column).tobytes())
        h.update(_dictionary_bytes(self.modules, self.paths, OPERATIONS))
        return h.hexdigest()


class SegmentTableBuilder:
    """Incremental, chunk-buffered :class:`SegmentTable` construction.

    ``append`` writes scalars into preallocated numpy chunks (no
    per-segment object, no list-of-tuples) and interns the string fields
    into the growing dictionaries — O(1) amortized per operation, which is
    what keeps the always-on collector's overhead flat as traces grow.
    """

    __slots__ = ("_chunk", "_full", "_cur", "_fill", "_modules", "_paths", "_count")

    _COLUMNS = (
        "module_code",
        "rank",
        "path_code",
        "op_code",
        "offset",
        "length",
        "start",
        "end",
        "ost",
    )
    _DTYPES = (
        np.uint8,
        np.int64,
        np.int32,
        np.uint8,
        np.int64,
        np.int64,
        np.float64,
        np.float64,
        np.int32,
    )

    def __init__(self, chunk: int = _CHUNK) -> None:
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        self._chunk = chunk
        self._full: list[tuple[np.ndarray, ...]] = []
        self._cur = self._new_chunk()
        self._fill = 0
        self._modules: dict[str, int] = {}
        self._paths: dict[str, int] = {}
        self._count = 0

    def _new_chunk(self) -> tuple[np.ndarray, ...]:
        return tuple(np.empty(self._chunk, dtype=dt) for dt in self._DTYPES)

    def __len__(self) -> int:
        return self._count

    def append(
        self,
        module: str,
        rank: int,
        path: str,
        operation: str,
        offset: int,
        length: int,
        start: float,
        end: float,
        ost: int | None = None,
    ) -> None:
        modules = self._modules
        mcode = modules.get(module)
        if mcode is None:
            mcode = modules[module] = len(modules)
        paths = self._paths
        pcode = paths.get(path)
        if pcode is None:
            pcode = paths[path] = len(paths)
        i = self._fill
        cur = self._cur
        cur[0][i] = mcode
        cur[1][i] = rank
        cur[2][i] = pcode
        cur[3][i] = READ_CODE if operation == "read" else WRITE_CODE
        cur[4][i] = offset
        cur[5][i] = length
        cur[6][i] = start
        cur[7][i] = end
        cur[8][i] = NO_OST if ost is None else ost
        self._fill = i + 1
        self._count += 1
        if self._fill == self._chunk:
            self._full.append(cur)
            self._cur = self._new_chunk()
            self._fill = 0

    def build(self) -> SegmentTable:
        """Concatenate the chunks into an immutable table (copies once)."""
        parts = [*self._full, tuple(col[: self._fill] for col in self._cur)]
        columns = {
            name: np.concatenate([p[j] for p in parts])
            for j, name in enumerate(self._COLUMNS)
        }
        return SegmentTable(
            modules=tuple(self._modules),
            paths=tuple(self._paths),
            **columns,
        )


def group_bounds(inverse: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Grouping scaffold for grouped reductions over a code column.

    Given per-row group indices (e.g. the ``inverse`` of ``np.unique``),
    returns ``(order, firsts, counts)``: a stable sort order bringing each
    group's rows together, the offset of each group's first row in that
    order, and each group's size.  ``reduceat`` over ``column[order]`` at
    ``firsts`` then computes per-group reductions.
    """
    order = np.argsort(inverse, kind="stable")
    counts = np.bincount(inverse)
    firsts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    return order, firsts, counts


def as_table(segments) -> SegmentTable:
    """Coerce any accepted segment container to a :class:`SegmentTable`.

    Accepts a table (returned as-is), ``None`` / empty (empty table), or
    any iterable of :class:`DxtSegment` — the compatibility path for
    callers still holding the PR 3 list representation.
    """
    if isinstance(segments, SegmentTable):
        return segments
    if not segments:
        return SegmentTable.empty()
    return SegmentTable.from_segments(segments)
