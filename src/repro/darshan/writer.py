"""Serialize a :class:`DarshanLog` to darshan-parser text format.

This is the format plain LLMs are fed in the paper's preliminary study
(§III): a header with job metadata and mount table, then one section per
module with tab-separated ``<module> <rank> <record id> <counter> <value>
<file name> <mount pt> <fs type>`` lines.  The MPIIO section follows POSIX,
which is why mid-trace truncation makes plain models miss MPI-IO facts.
"""

from __future__ import annotations

from repro.darshan.log import MODULE_ORDER, DarshanLog

__all__ = ["render_darshan_text"]

_MODULE_TITLES = {
    "POSIX": "POSIX module data",
    "MPIIO": "MPI-IO module data",
    "STDIO": "STDIO module data",
    "LUSTRE": "LUSTRE module data",
}


def render_darshan_text(log: DarshanLog, include_dxt: bool = False) -> str:
    """Render ``log`` exactly once; output is stable for identical logs.

    ``include_dxt=True`` appends the DXT segment table in
    ``darshan-dxt-parser`` format (when the log carries one), so the export
    preserves the temporal evidence channel and
    :func:`~repro.darshan.parser.parse_darshan_text` restores it.  The
    default matches real deployments (and the paper's plain-LLM inputs):
    counter text only, DXT dropped.
    """
    h = log.header
    lines: list[str] = []
    lines.append(f"# darshan log version: {h.log_version}")
    lines.append("# compression method: ZLIB")
    lines.append(f"# exe: {h.exe}")
    lines.append(f"# uid: {h.uid}")
    lines.append(f"# jobid: {h.jobid}")
    lines.append(f"# start_time: {h.start_time}")
    lines.append(f"# start_time_asci: {h.start_time_ascii}")
    lines.append(f"# end_time: {h.end_time}")
    lines.append(f"# nprocs: {h.nprocs}")
    lines.append(f"# run time: {h.run_time:.4f}")
    lines.append("")
    lines.append("# mounted file systems (mount point and fs type)")
    lines.append("# -------------------------------------------------------")
    for mount, fs_type in h.mounts:
        lines.append(f"# mount entry:\t{mount}\t{fs_type}")
    lines.append("")

    for module in MODULE_ORDER:
        records = log.records_for(module)
        if not records:
            continue
        lines.append("# " + "*" * 55)
        lines.append(f"# {_MODULE_TITLES.get(module, module + ' module data')}")
        lines.append("# " + "*" * 55)
        lines.append("")
        lines.append(
            "#<module>\t<rank>\t<record id>\t<counter>\t<value>"
            "\t<file name>\t<mount pt>\t<fs type>"
        )
        for rec in records:
            rid = rec.record_id
            for name, value in rec.counters.items():
                lines.append(
                    f"{module}\t{rec.rank}\t{rid}\t{name}\t{value}"
                    f"\t{rec.path}\t{rec.mount_point}\t{rec.fs_type}"
                )
            for name, value in rec.fcounters.items():
                lines.append(
                    f"{module}\t{rec.rank}\t{rid}\t{name}\t{value:.6f}"
                    f"\t{rec.path}\t{rec.mount_point}\t{rec.fs_type}"
                )
        lines.append("")
    if include_dxt and log.dxt_segments:
        from repro.darshan.dxt import render_dxt_text

        lines.extend(render_dxt_text(log.dxt_segments).splitlines())
        lines.append("")
    return "\n".join(lines) + "\n"
