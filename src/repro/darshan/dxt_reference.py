"""Scalar reference implementations of the DXT temporal kernels.

These are the PR 3 per-object sweeps over ``list[DxtSegment]``, kept as
the *executable specification* of the vectorized kernels in
:mod:`repro.darshan.dxt`: the golden-equivalence tests assert the
columnar implementations reproduce these outputs on both pinned scenario
fixtures and randomized segment tables, and
``benchmarks/bench_dxt_scaling.py`` uses them as the baseline the
:math:`\\geq 10\\times` speedup target is measured against.

The only deliberate divergence from the PR 3 code is the timeline phase
signature: op-kind *presence* (any segments) replaces op-kind *byte
volume*, fixing the misclassification (and the NaN exposure of the
list-comprehension masks) when one op kind has segments but zero bytes.
Everywhere else the arithmetic is kept operation-for-operation identical.
"""

from __future__ import annotations

import numpy as np

from repro.darshan.segtable import DxtSegment
from repro.llm.facts import Fact

__all__ = [
    "scalar_app_level_segments",
    "scalar_timeline_facts",
    "scalar_temporal_facts",
]


def scalar_app_level_segments(segments: list[DxtSegment]) -> list[DxtSegment]:
    """Per-object sweep dropping POSIX segments lowered from MPI-IO."""
    mpiio_paths = {s.path for s in segments if s.module == "X_MPIIO"}
    return [s for s in segments if s.module != "X_POSIX" or s.path not in mpiio_paths]


def scalar_timeline_facts(
    segments: list[DxtSegment],
    n_bins: int = 20,
    burst_threshold: float = 3.0,
) -> list[Fact]:
    """Timeline analysis over a segment list (binning aside, per-object)."""
    if not segments:
        return []
    t0 = min(s.start_time for s in segments)
    t1 = max(s.end_time for s in segments)
    span = max(t1 - t0, 1e-9)
    starts = np.array([s.start_time for s in segments])
    lengths = np.array([s.length for s in segments], dtype=np.float64)
    bins = np.minimum(((starts - t0) / span * n_bins).astype(int), n_bins - 1)
    traffic = np.bincount(bins, weights=lengths, minlength=n_bins)
    mean_traffic = traffic.mean()
    bursts = (
        np.nonzero(traffic > burst_threshold * mean_traffic)[0] if mean_traffic > 0 else []
    )

    read_starts = [s.start_time for s in segments if s.operation == "read"]
    write_starts = [s.start_time for s in segments if s.operation == "write"]
    read_mid = float(np.mean(read_starts)) if read_starts else t0
    write_mid = float(np.mean(write_starts)) if write_starts else t0
    phase = "read-then-write" if read_mid < write_mid else "write-then-read"
    if not (read_starts and write_starts):
        phase = "read-only" if read_starts else "write-only"

    return [
        Fact(
            "dxt_timeline",
            {
                "n_segments": len(segments),
                "span_s": float(span),
                "n_bursts": int(len(bursts)),
                "peak_to_mean": float(traffic.max() / mean_traffic) if mean_traffic else 0.0,
                "phase": phase,
            },
        )
    ]


def _merged_intervals(spans: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge (start, end) intervals into disjoint busy windows."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(spans):
        if merged and start <= merged[-1][1]:
            prev_start, prev_end = merged[-1]
            merged[-1] = (prev_start, max(prev_end, end))
        else:
            merged.append((start, end))
    return merged


def _overlap(intervals: list[tuple[float, float]], lo: float, hi: float) -> float:
    """Total length of ``intervals`` falling inside ``[lo, hi]``."""
    return sum(max(0.0, min(hi, end) - max(lo, start)) for start, end in intervals)


def _rank_skew_fact(app_segments: list[DxtSegment]) -> Fact | None:
    by_rank: dict[int, list[DxtSegment]] = {}
    for seg in app_segments:
        by_rank.setdefault(seg.rank, []).append(seg)
    if len(by_rank) < 4:
        return None
    ranks = sorted(by_rank)
    spans = np.array(
        [max(s.end_time for s in by_rank[r]) - min(s.start_time for s in by_rank[r]) for r in ranks]
    )
    times = np.array([sum(s.duration for s in by_rank[r]) for r in ranks])
    volumes = np.array([float(sum(s.length for s in by_rank[r])) for r in ranks])
    slowest = int(np.argmax(spans))
    med_span = float(np.median(spans))
    med_time = float(np.median(times))
    med_vol = float(np.median(volumes))
    if med_span <= 0 or med_time <= 0 or med_vol <= 0:
        return None
    return Fact(
        "dxt_rank_skew",
        {
            "slowest_rank": ranks[slowest],
            "span_skew": float(spans[slowest] / med_span),
            "time_skew": float(times[slowest] / med_time),
            "bytes_ratio": float(volumes[slowest] / med_vol),
            "nprocs": len(ranks),
        },
    )


def _concurrency_fact(app_segments: list[DxtSegment]) -> Fact | None:
    active_ranks = len({s.rank for s in app_segments})
    if active_ranks < 4:
        return None
    events: list[tuple[float, int]] = []
    for seg in app_segments:
        events.append((seg.start_time, 1))
        events.append((seg.end_time, -1))
    events.sort()
    inflight = 0
    busy_time = 0.0
    weighted = 0.0
    peak = 0
    prev_t = events[0][0]
    for t, delta in events:
        if inflight > 0:
            busy_time += t - prev_t
            weighted += inflight * (t - prev_t)
        prev_t = t
        inflight += delta
        peak = max(peak, inflight)
    if busy_time <= 0:
        return None
    return Fact(
        "dxt_concurrency",
        {
            "mean_inflight": float(weighted / busy_time),
            "peak_inflight": int(peak),
            "active_ranks": active_ranks,
        },
    )


def _idle_fact(app_segments: list[DxtSegment]) -> Fact | None:
    busy = _merged_intervals([(s.start_time, s.end_time) for s in app_segments])
    if not busy:
        return None
    t0, t1 = busy[0][0], busy[-1][1]
    span = t1 - t0
    if span <= 0:
        return None
    gaps = [
        (busy[i][1], busy[i + 1][0])
        for i in range(len(busy) - 1)
        if busy[i + 1][0] - busy[i][1] > 0.02 * span
    ]
    idle = sum(hi - lo for lo, hi in gaps)

    by_rank: dict[int, list[tuple[float, float]]] = {}
    for seg in app_segments:
        by_rank.setdefault(seg.rank, []).append((seg.start_time, seg.end_time))
    stalled = 0
    for spans in by_rank.values():
        rank_busy = _merged_intervals(spans)
        rank_gaps = [(t0, rank_busy[0][0])]
        rank_gaps += [
            (rank_busy[i][1], rank_busy[i + 1][0]) for i in range(len(rank_busy) - 1)
        ]
        covered_wait = sum(_overlap(busy, lo, hi) for lo, hi in rank_gaps)
        if covered_wait >= 0.25 * span:
            stalled += 1
    return Fact(
        "dxt_idle",
        {
            "span_s": float(span),
            "idle_fraction": float(idle / span),
            "n_gaps": len(gaps),
            "longest_gap_s": float(max((hi - lo for lo, hi in gaps), default=0.0)),
            "stalled_ranks": stalled,
        },
    )


def _file_skew_fact(app_segments: list[DxtSegment]) -> Fact | None:
    per_file: dict[str, tuple[float, float, int]] = {}
    for seg in app_segments:
        nbytes, busy, count = per_file.get(seg.path, (0.0, 0.0, 0))
        per_file[seg.path] = (nbytes + seg.length, busy + seg.duration, count + 1)
    buckets: dict[int, list[tuple[str, float, float]]] = {}
    for path, (nbytes, busy, count) in per_file.items():
        if count < 8 or nbytes < 1024 * 1024 or busy <= 0:
            continue
        bucket = int(np.log2(max(1.0, nbytes / count)))
        buckets.setdefault(bucket, []).append((path, nbytes / busy / (1024 * 1024), nbytes))
    if not buckets:
        return None
    group = max(buckets.values(), key=lambda files: sum(f[2] for f in files))
    if len(group) < 4:
        return None
    rates = np.array([mbps for _, mbps, _ in group])
    median = float(np.median(rates))
    slow_idx = int(np.argmin(rates))
    slow_path, slow_mbps, _ = group[slow_idx]
    if slow_mbps <= 0:
        return None
    return Fact(
        "dxt_file_skew",
        {
            "n_files": len(group),
            "slow_path": slow_path,
            "slow_mbps": float(slow_mbps),
            "median_mbps": median,
            "ratio": float(median / slow_mbps),
        },
    )


def _ost_facts(app_segments: list[DxtSegment]) -> list[Fact]:
    """Per-object reference of the per-OST server-attribution kernels.

    Mirrors :func:`repro.darshan.dxt._ost_facts` operation for operation:
    drop unattributed segments, keep the dominant request-size bucket
    (first-touched bucket wins byte ties), reduce per OST, and report the
    hot server's time-vs-byte share plus the slow-server rate set.
    """
    attributed = [s for s in app_segments if s.ost is not None]
    if not attributed:
        return []
    bucket_totals: dict[int, float] = {}
    for seg in attributed:
        bucket = int(np.log2(max(1.0, float(seg.length))))
        bucket_totals[bucket] = bucket_totals.get(bucket, 0.0) + seg.length
    best = max(bucket_totals, key=bucket_totals.get)  # insertion-order ties

    per_ost: dict[int, tuple[float, float, int]] = {}
    for seg in attributed:
        if int(np.log2(max(1.0, float(seg.length)))) != best:
            continue
        nbytes, busy, count = per_ost.get(seg.ost, (0.0, 0.0, 0))
        per_ost[seg.ost] = (nbytes + seg.length, busy + seg.duration, count + 1)
    eligible = sorted(
        ost
        for ost, (nbytes, busy, count) in per_ost.items()
        if count >= 4 and nbytes >= 1024 * 1024 and busy > 0
    )
    if len(eligible) < 4:
        return []
    e_bytes = np.array([per_ost[ost][0] for ost in eligible])
    e_busy = np.array([per_ost[ost][1] for ost in eligible])

    time_share = e_busy / float(e_busy.sum())
    bytes_share = e_bytes / float(e_bytes.sum())
    hot = int(np.argmax(time_share))
    rates = e_bytes / e_busy / (1024 * 1024)
    median = float(np.median(rates))
    slow_mbps = float(rates.min())
    slow = [ost for ost, rate in zip(eligible, rates) if rate <= 1.25 * slow_mbps]
    return [
        Fact(
            "dxt_ost_skew",
            {
                "n_osts": len(eligible),
                "hot_ost": eligible[hot],
                "time_share": float(time_share[hot]),
                "bytes_share": float(bytes_share[hot]),
                "skew": float(time_share[hot] / bytes_share[hot]),
            },
        ),
        Fact(
            "dxt_ost_latency",
            {
                "n_osts": len(eligible),
                "slow_osts": slow,
                "slow_mbps": slow_mbps,
                "median_mbps": median,
                "ratio": float(median / slow_mbps),
            },
        ),
    ]


def scalar_temporal_facts(segments: list[DxtSegment], n_bins: int = 20) -> list[Fact]:
    """The full PR 3 per-object extraction pipeline over a segment list,
    extended with the per-OST reference sweeps."""
    segments = list(segments)
    if not segments:
        return []
    app = scalar_app_level_segments(segments)
    facts = scalar_timeline_facts(segments, n_bins=n_bins)
    for fact in (
        _rank_skew_fact(app),
        _concurrency_fact(app),
        _idle_fact(segments),
        _file_skew_fact(app),
    ):
        if fact is not None:
            facts.append(fact)
    facts.extend(_ost_facts(app))
    return facts
