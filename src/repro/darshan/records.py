"""Per-file, per-module Darshan records."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["DarshanRecord", "record_id_for"]


def record_id_for(path: str) -> int:
    """Stable 63-bit record id for a path (Darshan hashes the full path)."""
    digest = hashlib.blake2b(path.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") >> 1  # keep it positive


@dataclass(slots=True)
class DarshanRecord:
    """Counters for one (module, file) pair.

    ``rank`` is the issuing rank for a file touched by a single rank, or
    ``-1`` for a shared record produced by Darshan's shared-file reduction.
    ``counters`` holds integer counters, ``fcounters`` floating-point ones;
    both are keyed by the canonical counter names in
    :mod:`repro.darshan.counters` (plus ``LUSTRE_OST_ID_<k>`` entries).
    """

    module: str
    path: str
    rank: int
    counters: dict[str, int] = field(default_factory=dict)
    fcounters: dict[str, float] = field(default_factory=dict)
    mount_point: str = "/"
    fs_type: str = "unknown"

    @property
    def record_id(self) -> int:
        """Darshan-style numeric record id derived from the path."""
        return record_id_for(self.path)

    @property
    def shared(self) -> bool:
        """True if this is a shared-file (rank-reduced) record."""
        return self.rank == -1

    def get(self, counter: str, default: int | float = 0) -> int | float:
        """Fetch a counter from either table, defaulting to ``default``."""
        if counter in self.counters:
            return self.counters[counter]
        return self.fcounters.get(counter, default)
