"""IO500-style workloads: 21 tuned configurations (paper §V-2).

IO500 composes ior (bulk bandwidth) and mdtest (metadata) phases; its
knobs — API (POSIX vs MPI-IO), transfer size, shared-file vs
file-per-process, access order, stripe settings — are exactly the knobs
that induce the TraceBench issue labels.  Each configuration below mirrors
a realistic mis-tuning the paper describes (e.g. "ior-easy tuned to use 8k
transfer sizes issued through independent POSIX operations across multiple
ranks").

POSIX-API configurations model runs whose processes do not leverage MPI
for I/O at all (*Multi-Process Without MPI*); MPI-IO configurations use
independent (non-collective) operations (*No Collective I/O*).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import KiB, MiB
from repro.workloads.base import Workload
from repro.workloads.patterns import data_phase, metadata_phase

__all__ = ["IO500Config", "IO500_CONFIGS", "build_io500", "IO500_BUILDERS"]

# Offset shim used by "misaligned large transfer" configurations: shifts
# every request off any 4 KiB boundary (2080 = 47008 mod 4096, a nod to
# ior-hard's famously odd 47008-byte transfer size).
_SHIM = 2080


@dataclass(frozen=True, slots=True)
class IO500Config:
    """One IO500 run configuration."""

    trace_id: str
    api: str  # 'posix' (multi-process, no MPI) or 'mpiio' (independent)
    nprocs: int
    xfer: int
    count_per_rank: int
    layout: str  # 'shared' or 'fpp'
    pattern: str  # 'seq', 'strided', or 'random'
    unaligned_shim: int = 0
    stripe_width: int = 1
    mdtest_files_per_rank: int = 0
    # Small per-rank status-file reads (stonewall logs etc.).  A *minor*
    # population of small requests that experts do not label an issue but
    # that trips Drishti's fixed >10%-small-requests trigger — the paper's
    # own example of threshold-based false positives.
    header_reads_per_rank: int = 0
    jobid: int = 0
    description: str = ""


IO500_CONFIGS: tuple[IO500Config, ...] = (
    # -- POSIX (multi-process without MPI) configurations ----------------
    IO500Config(
        "io500-01-posix-4k-fpp", "posix", 16, 4 * KiB, 1500, "fpp", "seq",
        jobid=201, description="ior-easy POSIX, 4k transfers, file per process",
    ),
    IO500Config(
        "io500-02-posix-8k-shared", "posix", 16, 8 * KiB, 1500, "shared", "strided",
        jobid=202, description="ior-easy POSIX, 8k transfers, single shared file",
    ),
    IO500Config(
        "io500-03-posix-hard-47008", "posix", 16, 47008, 700, "shared", "strided",
        jobid=203, description="ior-hard POSIX, 47008-byte unaligned shared-file transfers",
    ),
    IO500Config(
        "io500-04-posix-hard-10000", "posix", 8, 10000, 1400, "shared", "strided",
        jobid=204, description="ior-hard POSIX, 10000-byte unaligned shared-file transfers",
    ),
    IO500Config(
        "io500-05-posix-hard-30000", "posix", 32, 30000, 500, "shared", "strided",
        jobid=205, description="ior-hard POSIX, 30000-byte unaligned shared-file transfers",
    ),
    IO500Config(
        "io500-06-posix-random-1m", "posix", 16, 1 * MiB, 90, "shared", "random",
        unaligned_shim=_SHIM,
        jobid=206, description="ior POSIX, randomized 1 MiB transfers off alignment",
    ),
    IO500Config(
        "io500-07-posix-random-1m-8p", "posix", 8, 1 * MiB, 160, "shared", "random",
        unaligned_shim=_SHIM,
        jobid=207, description="ior POSIX, randomized 1 MiB transfers, 8 processes",
    ),
    IO500Config(
        "io500-08-posix-random-1m-32p", "posix", 32, 1 * MiB, 50, "shared", "random",
        unaligned_shim=_SHIM,
        jobid=208, description="ior POSIX, randomized 1 MiB transfers, 32 processes",
    ),
    IO500Config(
        "io500-09-posix-tuned-4m", "posix", 16, 4 * MiB, 40, "fpp", "seq",
        stripe_width=4, header_reads_per_rank=30,
        jobid=209, description="well-tuned ior-easy POSIX, 4 MiB aligned FPP",
    ),
    IO500Config(
        "io500-10-posix-tuned-8m", "posix", 8, 8 * MiB, 30, "fpp", "seq",
        stripe_width=4, header_reads_per_rank=30,
        jobid=210, description="well-tuned ior-easy POSIX, 8 MiB aligned FPP",
    ),
    IO500Config(
        "io500-11-posix-tuned-4m-32p", "posix", 32, 4 * MiB, 20, "fpp", "seq",
        stripe_width=4, header_reads_per_rank=12,
        jobid=211, description="well-tuned ior-easy POSIX, 32 processes",
    ),
    IO500Config(
        "io500-12-posix-tuned-16m", "posix", 16, 16 * MiB, 12, "fpp", "seq",
        stripe_width=8, header_reads_per_rank=12,
        jobid=212, description="well-tuned ior-easy POSIX, 16 MiB aligned FPP",
    ),
    IO500Config(
        "io500-13-posix-mdtest", "posix", 16, 0, 0, "fpp", "seq",
        mdtest_files_per_rank=250, stripe_width=4,
        jobid=213, description="mdtest-dominated POSIX run",
    ),
    # -- MPI-IO (independent, no collectives) configurations -------------
    IO500Config(
        "io500-14-mpiio-8k-shared", "mpiio", 16, 8 * KiB, 1500, "shared", "strided",
        jobid=214, description="ior MPI-IO independent, 8k shared-file transfers",
    ),
    IO500Config(
        "io500-15-mpiio-16k-shared", "mpiio", 8, 16 * KiB, 1800, "shared", "strided",
        jobid=215, description="ior MPI-IO independent, 16k shared-file transfers",
    ),
    IO500Config(
        "io500-16-mpiio-4k-shared", "mpiio", 16, 4 * KiB, 1500, "shared", "strided",
        jobid=216, description="ior MPI-IO independent, 4k shared-file transfers",
    ),
    IO500Config(
        "io500-17-mpiio-hard-47008", "mpiio", 16, 47008, 700, "shared", "strided",
        jobid=217, description="ior-hard MPI-IO independent, 47008-byte transfers",
    ),
    IO500Config(
        "io500-18-mpiio-hard-23504", "mpiio", 8, 23504, 1200, "shared", "strided",
        jobid=218, description="ior-hard MPI-IO independent, 23504-byte transfers",
    ),
    IO500Config(
        "io500-19-mpiio-random-1m", "mpiio", 16, 1 * MiB, 90, "shared", "random",
        unaligned_shim=_SHIM,
        jobid=219, description="ior MPI-IO independent, randomized 1 MiB unaligned",
    ),
    IO500Config(
        "io500-20-mpiio-random-1m-32p", "mpiio", 32, 1 * MiB, 50, "shared", "random",
        unaligned_shim=_SHIM,
        jobid=220, description="ior MPI-IO independent, randomized, 32 processes",
    ),
    IO500Config(
        "io500-21-mpiio-mdtest", "mpiio", 16, 4 * MiB, 30, "fpp", "seq",
        stripe_width=4, mdtest_files_per_rank=150,
        jobid=221, description="MPI-IO independent bulk + mdtest metadata storm",
    ),
)


def build_io500(cfg: IO500Config) -> Workload:
    """Materialize one IO500 configuration as a runnable workload."""
    phases = []
    data_dir = f"/scratch/io500/{cfg.trace_id}"
    if cfg.count_per_rank > 0:
        common = dict(
            xfer=cfg.xfer,
            count_per_rank=cfg.count_per_rank,
            api=cfg.api,
            layout=cfg.layout,
            pattern=cfg.pattern,
            unaligned_shim=cfg.unaligned_shim,
        )
        # ior runs a write phase then reads the data back.
        phases.append(data_phase(f"{data_dir}/ior.dat", "write", **common))
        phases.append(data_phase(f"{data_dir}/ior.dat", "read", **common))
    if cfg.header_reads_per_rank > 0:
        phases.append(
            data_phase(
                f"{data_dir}/stonewall.log",
                "read",
                xfer=4 * KiB,
                count_per_rank=cfg.header_reads_per_rank,
                api=cfg.api,
                layout="fpp",
            )
        )
    if cfg.mdtest_files_per_rank > 0:
        phases.append(
            metadata_phase(f"{data_dir}/mdtest", files_per_rank=cfg.mdtest_files_per_rank)
        )
    return Workload(
        name=cfg.trace_id,
        exe="/opt/io500/bin/ior" if cfg.count_per_rank else "/opt/io500/bin/mdtest",
        nprocs=cfg.nprocs,
        jobid=cfg.jobid,
        uses_mpi=cfg.api == "mpiio",
        default_stripe_width=cfg.stripe_width,
        phases=tuple(phases),
    )


IO500_BUILDERS = {cfg.trace_id: (lambda c=cfg: build_io500(c)) for cfg in IO500_CONFIGS}
