"""Workload definition and execution harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol

import numpy as np

from repro.darshan.instrument import DarshanInstrument
from repro.darshan.log import DarshanLog
from repro.sim.filesystem import LustreFileSystem
from repro.sim.ops import IOOp
from repro.sim.runtime import IORuntime, JobResult, JobSpec
from repro.sim.timing import PerfModel
from repro.util.rng import rng_for
from repro.util.units import MiB

__all__ = ["Workload", "WorkloadContext", "PhaseFn", "run_workload"]


@dataclass(slots=True)
class WorkloadContext:
    """Everything a phase needs to emit its operation stream."""

    nprocs: int
    fs: LustreFileSystem
    rng: np.random.Generator
    phase_index: int = 0


class PhaseFn(Protocol):
    """A phase maps the context to an operation stream."""

    def __call__(self, ctx: WorkloadContext) -> Iterable[IOOp]: ...


@dataclass(frozen=True)
class Workload:
    """A reproducible application model.

    ``phases`` run in order; each phase sees a context with an independent
    RNG stream so reordering or resizing one phase never perturbs another.
    ``stripe_overrides`` maps paths to ``(stripe_size, stripe_width)`` or
    ``(stripe_size, stripe_width, stripe_offset)`` — the three-element form
    pins the starting OST, like ``lfs setstripe -i`` — and is applied
    before any I/O, like a job script running ``lfs setstripe``.
    ``uses_mpi=False`` models a multi-process application launched without
    MPI (TraceBench's *Multi-Process Without MPI* issue): such runs can
    never produce MPI-IO records.  ``perf`` overrides the cluster
    performance constants (``None`` keeps the :class:`PerfModel` defaults);
    scenarios use it to model e.g. slow fsync commit latency.
    ``slow_osts`` marks degraded storage servers (OST id -> service-time
    multiplier): traffic counters stay balanced while the affected
    operations slow down, a purely temporal pathology.
    """

    name: str
    exe: str
    nprocs: int
    phases: tuple[PhaseFn, ...]
    uses_mpi: bool = True
    jobid: int = 1000
    num_osts: int = 64
    default_stripe_size: int = 1 * MiB
    default_stripe_width: int = 1
    stripe_overrides: dict[str, tuple] = field(default_factory=dict)
    compute_seconds: float = 0.0  # non-I/O runtime folded into the job clock
    perf: PerfModel | None = None
    slow_osts: dict[int, float] = field(default_factory=dict)

    def run(self, seed: int = 0) -> tuple[DarshanLog, JobResult]:
        """Execute the workload and return its Darshan log + aggregates."""
        return run_workload(self, seed)


def run_workload(workload: Workload, seed: int = 0) -> tuple[DarshanLog, JobResult]:
    """Build the filesystem/runtime/instrument stack and execute ``workload``.

    The runtime always carries both evidence channels: the Darshan counter
    instrumentation and a :class:`~repro.darshan.dxt.DxtCollector`, whose
    columnar segment table is attached to the returned log
    (``log.dxt_segments``, a :class:`~repro.darshan.segtable.SegmentTable`)
    so downstream consumers can reason about the time domain.
    """
    from repro.darshan.dxt import DxtCollector

    fs = LustreFileSystem(
        num_osts=workload.num_osts,
        default_stripe_size=workload.default_stripe_size,
        default_stripe_width=workload.default_stripe_width,
        seed=seed,
        slow_osts=workload.slow_osts,
    )
    for path, override in workload.stripe_overrides.items():
        fs.set_stripe(path, *override)
    spec = JobSpec(
        exe=workload.exe,
        nprocs=workload.nprocs,
        jobid=workload.jobid,
        uses_mpi=workload.uses_mpi,
        # Stagger start times so each trace has a distinct but stable epoch.
        start_time=1_700_000_000 + workload.jobid * 3600,
    )
    runtime = IORuntime(spec, fs, perf=workload.perf)
    instrument = DarshanInstrument(spec, fs)
    runtime.add_observer(instrument)
    dxt = DxtCollector()
    runtime.add_observer(dxt)

    def ops() -> Iterable[IOOp]:
        for i, phase in enumerate(workload.phases):
            ctx = WorkloadContext(
                nprocs=workload.nprocs,
                fs=fs,
                rng=rng_for(seed, "workload", workload.name, "phase", i),
                phase_index=i,
            )
            yield from phase(ctx)

    result = runtime.run(ops())
    run_time = result.runtime + workload.compute_seconds
    log = instrument.finalize(run_time)
    log.dxt_segments = dxt.segments
    return log, result
