"""Synthetic workload generators that produce Darshan traces.

Each workload is a composition of *phases* (:mod:`repro.workloads.patterns`)
executed by the simulated runtime under Darshan instrumentation.  The three
TraceBench sources are modelled here:

* :mod:`repro.workloads.simple_bench` — the 10 rudimentary single-issue
  C-script analogues;
* :mod:`repro.workloads.io500` — 21 parameterizations of the IO500
  benchmark phases (ior-easy, ior-hard, mdtest);
* :mod:`repro.workloads.real_apps` — 9 real-application models (AMReX,
  E2E original/recollected, OpenPMD original/recollected, HACC-IO, ...).
"""

from repro.workloads.base import Workload, WorkloadContext, run_workload
from repro.workloads.patterns import (
    data_phase,
    imbalanced_write_phase,
    metadata_phase,
    repetitive_read_phase,
    stdio_phase,
)

__all__ = [
    "Workload",
    "WorkloadContext",
    "run_workload",
    "data_phase",
    "metadata_phase",
    "repetitive_read_phase",
    "imbalanced_write_phase",
    "stdio_phase",
]
