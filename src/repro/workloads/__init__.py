"""Synthetic workload generators that produce Darshan traces.

Each workload is a composition of *phases* (:mod:`repro.workloads.patterns`)
executed by the simulated runtime under Darshan instrumentation.  Workloads
enter the system through the **scenario registry**
(:mod:`repro.workloads.scenarios`): a :class:`~repro.workloads.scenarios.Scenario`
couples a workload builder with its expert ground truth (``root_causes``),
a difficulty tier, and selection tags, and everything downstream — the
TraceBench build, the evaluation harness, the batch runner, and the CLI
(``list-scenarios``, ``evaluate --scenarios TAG``) — enumerates scenarios
through ``register_scenario`` / ``get_scenario`` / ``available_scenarios``
rather than hard-coded lists.  It is the third extension surface next to
the tool registry and the stage pipeline.

Two scenario tiers ship built in:

* the paper's three TraceBench sources (tag ``tracebench``):
  :mod:`repro.workloads.simple_bench` — the 10 rudimentary single-issue
  C-script analogues; :mod:`repro.workloads.io500` — 21 parameterizations
  of the IO500 benchmark phases (ior-easy, ior-hard, mdtest); and
  :mod:`repro.workloads.real_apps` — 9 real-application models (AMReX,
  E2E original/recollected, OpenPMD original/recollected, HACC-IO, ...);
* the extended pathology tier (tag ``pathology``):
  :mod:`repro.workloads.pathologies` — 12 scenarios covering random small
  reads, false sharing, metadata storms, straggler ranks, bursty N-to-1
  checkpoints, read-modify-write, misaligned strides, tiny collectives,
  fsync-per-write, redundant re-reads, stdio/MPI-IO interference, and a
  clean-baseline control with an empty ground-truth label set.
"""

from repro.workloads.base import Workload, WorkloadContext, run_workload
from repro.workloads.patterns import (
    checkpoint_burst_phase,
    data_phase,
    false_sharing_phase,
    fsync_per_write_phase,
    imbalanced_write_phase,
    metadata_churn_phase,
    metadata_phase,
    read_modify_write_phase,
    repetitive_read_phase,
    stdio_phase,
    straggler_phase,
)
from repro.workloads.scenarios import (
    Scenario,
    ScenarioNotFoundError,
    available_scenarios,
    available_tags,
    build_scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    select_scenarios,
    unregister_scenario,
)

__all__ = [
    "Workload",
    "WorkloadContext",
    "run_workload",
    "data_phase",
    "metadata_phase",
    "repetitive_read_phase",
    "imbalanced_write_phase",
    "stdio_phase",
    "false_sharing_phase",
    "metadata_churn_phase",
    "checkpoint_burst_phase",
    "read_modify_write_phase",
    "fsync_per_write_phase",
    "straggler_phase",
    "Scenario",
    "ScenarioNotFoundError",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "iter_scenarios",
    "available_scenarios",
    "available_tags",
    "select_scenarios",
    "build_scenario",
]
