"""Real-application models (paper §V-3).

Nine traces modelled on the applications the paper names or alludes to:
AMReX (the §III running example: 722 s, 8 processes, 11 files, Lustre
stripe count 1), E2E and OpenPMD each in an original and a "recollected"
variant with the primary issue resolved, plus checkpoint/analysis codes
(HACC-IO, Montage, QMCPACK, a post-processing reader).  All run on
production-scale process counts with mixed I/O phases, making them the
hardest traces to diagnose.
"""

from __future__ import annotations

from repro.util.units import KiB, MiB
from repro.workloads.base import Workload
from repro.workloads.patterns import (
    data_phase,
    imbalanced_write_phase,
    metadata_phase,
    stdio_phase,
)

__all__ = ["REAL_APP_BUILDERS"]


def ra01_amrex() -> Workload:
    """AMReX plotfile dump: POSIX chunk writes instead of MPI-IO.

    The §III example: 8 processes, ~722 s runtime, 11 files on a Lustre
    mount with stripe count 1.  Each rank writes its own plotfile chunks
    through POSIX at odd sizes; only a small header goes through
    (independent) MPI-IO — the "predominant use of the POSIX interface for
    I/O instead of MPI-IO" issue the plain LLMs miss.
    """
    return Workload(
        name="ra01-amrex",
        exe="/global/homes/amrex/Nyx3d.ex",
        nprocs=8,
        jobid=301,
        compute_seconds=715.0,
        phases=(
            # MPI-IO header write by every rank (independent, small).
            data_phase(
                "/scratch/amrex/plt00000/Header",
                "write",
                xfer=64 * KiB,
                count_per_rank=4,
                api="mpiio",
                layout="shared",
                pattern="strided",
            ),
            # Per-rank POSIX chunk writes at odd (misaligned) sizes.
            data_phase(
                "/scratch/amrex/plt00000/Cell_D",
                "write",
                xfer=30000,
                count_per_rank=600,
                api="posix",
                layout="fpp",
            ),
            # Small STDIO job log from rank 0 (volume too small to matter).
            stdio_phase(
                "/scratch/amrex/plt00000/job_info",
                "write",
                xfer=1 * KiB,
                count_per_rank=64,
                ranks=(0,),
            ),
        ),
    )


def ra02_e2e_original() -> Workload:
    """E2E climate output, original run: small imbalanced shared writes."""
    return Workload(
        name="ra02-e2e-original",
        exe="/global/homes/e2e/e2e_writer",
        nprocs=32,
        jobid=302,
        compute_seconds=480.0,
        stripe_overrides={"/scratch/e2e/output.nc": (1 * MiB, 24)},
        phases=(
            imbalanced_write_phase(
                "/scratch/e2e/output.nc",
                xfer=10000,
                total_count=12000,
                heavy_share=0.8,
                api="mpiio",
                layout="shared",
            ),
        ),
    )


def ra03_e2e_recollected() -> Workload:
    """E2E recollected: collective writes fixed the small-write storm.

    Remaining issues: the shared output file, an unaligned rank-0 restart
    dump, and input still read through independent MPI-IO.
    """
    return Workload(
        name="ra03-e2e-recollected",
        exe="/global/homes/e2e/e2e_writer",
        nprocs=32,
        jobid=303,
        compute_seconds=460.0,
        stripe_overrides={
            "/scratch/e2e/output_v2.nc": (1 * MiB, 24),
            "/scratch/e2e/restart.bin": (1 * MiB, 8),
        },
        phases=(
            data_phase(
                "/scratch/e2e/forcing.nc",
                "read",
                xfer=2 * MiB,
                count_per_rank=8,
                api="mpiio",
                layout="fpp",
            ),
            data_phase(
                "/scratch/e2e/output_v2.nc",
                "write",
                xfer=1 * MiB,
                count_per_rank=32,
                api="mpiio",
                collective=True,
                layout="shared",
                pattern="strided",
            ),
            # Unaligned POSIX restart dump (the leftover misalignment).
            data_phase(
                "/scratch/e2e/restart.bin",
                "write",
                xfer=1 * MiB,
                count_per_rank=12,
                api="posix",
                layout="shared",
                unaligned_shim=17,
            ),
        ),
    )


def ra04_openpmd_original() -> Workload:
    """openPMD reader, original: random small unaligned shared reads."""
    return Workload(
        name="ra04-openpmd-original",
        exe="/global/homes/pmd/openpmd_reader",
        nprocs=16,
        jobid=304,
        compute_seconds=220.0,
        stripe_overrides={"/scratch/openpmd/data.h5": (1 * MiB, 24)},
        phases=(
            data_phase(
                "/scratch/openpmd/data.h5",
                "read",
                xfer=30000,
                count_per_rank=900,
                api="mpiio",
                layout="shared",
                pattern="random",
            ),
        ),
    )


def ra05_openpmd_recollected() -> Workload:
    """openPMD recollected: large sequential reads, still independent and
    off-alignment (chunk boundaries within the HDF5 layout)."""
    return Workload(
        name="ra05-openpmd-recollected",
        exe="/global/homes/pmd/openpmd_reader",
        nprocs=16,
        jobid=305,
        compute_seconds=200.0,
        default_stripe_width=4,
        phases=(
            # Small per-rank attribute reads (negligible, unlabeled; trips
            # fixed-threshold tools).
            data_phase(
                "/scratch/openpmd/attrs.json",
                "read",
                xfer=4 * KiB,
                count_per_rank=40,
                api="mpiio",
                layout="fpp",
            ),
            data_phase(
                "/scratch/openpmd/data_v2.h5",
                "read",
                xfer=1 * MiB,
                count_per_rank=80,
                api="mpiio",
                layout="fpp",
                unaligned_shim=512,
            ),
        ),
    )


def ra06_hacc_io() -> Workload:
    """HACC-IO-style checkpoint: random small unaligned POSIX writes."""
    return Workload(
        name="ra06-hacc-io",
        exe="/global/homes/hacc/hacc_io",
        nprocs=16,
        jobid=306,
        compute_seconds=350.0,
        phases=(
            # Small collective read of the input deck (keeps MPI visible).
            data_phase(
                "/scratch/hacc/indat.params",
                "read",
                xfer=512 * KiB,
                count_per_rank=1,
                api="mpiio",
                collective=True,
                layout="shared",
            ),
            # Small sequential POSIX reads of the particle input (the
            # volume stays small; the request *frequency* is the issue).
            data_phase(
                "/scratch/hacc/particles.in",
                "read",
                xfer=4 * KiB,
                count_per_rank=200,
                api="posix",
                layout="shared",
                pattern="strided",
            ),
            # Random, odd-sized POSIX checkpoint writes, stripe width 1.
            data_phase(
                "/scratch/hacc/checkpoint.out",
                "write",
                xfer=30000,
                count_per_rank=900,
                api="posix",
                layout="fpp",
                pattern="random",
            ),
        ),
    )


def ra07_montage() -> Workload:
    """Montage mosaicking: thousands of small tile files and reads."""
    return Workload(
        name="ra07-montage",
        exe="/global/homes/montage/mProjExec",
        nprocs=8,
        jobid=307,
        compute_seconds=260.0,
        phases=(
            # Small collective read of the region header (keeps MPI visible,
            # small enough not to constitute shared-file traffic).
            data_phase(
                "/scratch/montage/region.hdr",
                "read",
                xfer=1 * MiB,
                count_per_rank=1,
                api="mpiio",
                collective=True,
                layout="shared",
            ),
            # Odd-sized sequential POSIX reads over many small tile files
            # (Montage touches hundreds of FITS tiles per projection).
            *(
                data_phase(
                    f"/scratch/montage/tiles/tile{k:03d}.fits",
                    "read",
                    xfer=3000,
                    count_per_rank=80,
                    api="posix",
                    layout="fpp",
                )
                for k in range(25)
            ),
            # Metadata storm creating one small output file per projection.
            metadata_phase(
                "/scratch/montage/proj",
                files_per_rank=200,
                with_stat=True,
                data_bytes=3000,
            ),
        ),
    )


def ra08_qmcpack() -> Workload:
    """QMCPACK walker dumps: metadata churn plus small unaligned writes."""
    return Workload(
        name="ra08-qmcpack",
        exe="/global/homes/qmc/qmcpack",
        nprocs=16,
        jobid=308,
        compute_seconds=540.0,
        phases=(
            # Small collective read of the wavefunction input.
            data_phase(
                "/scratch/qmc/wfs.h5",
                "read",
                xfer=512 * KiB,
                count_per_rank=1,
                api="mpiio",
                collective=True,
                layout="shared",
            ),
            # Small aligned POSIX restart reads.
            data_phase(
                "/scratch/qmc/restart.cfg",
                "read",
                xfer=4 * KiB,
                count_per_rank=800,
                api="posix",
                layout="fpp",
            ),
            # Odd-sized sequential POSIX walker dumps (small + misaligned).
            data_phase(
                "/scratch/qmc/walkers.dat",
                "write",
                xfer=10000,
                count_per_rank=300,
                api="posix",
                layout="fpp",
            ),
            # Per-step open/stat/write/close churn on stat files.
            metadata_phase(
                "/scratch/qmc/stats",
                files_per_rank=150,
                with_stat=True,
                data_bytes=0,
            ),
        ),
    )


def ra09_post_analysis() -> Workload:
    """Post-processing reader/writer with nearly every issue at once.

    Models a poorly-tuned analysis code: random, small, odd-sized
    independent MPI-IO reads and random POSIX writes against shared files.
    """
    return Workload(
        name="ra09-post-analysis",
        exe="/global/homes/post/analyze",
        nprocs=16,
        jobid=309,
        compute_seconds=180.0,
        stripe_overrides={
            "/scratch/post/fields.h5": (1 * MiB, 24),
            "/scratch/post/derived.h5": (1 * MiB, 24),
        },
        phases=(
            data_phase(
                "/scratch/post/fields.h5",
                "read",
                xfer=25000,
                count_per_rank=800,
                api="mpiio",
                layout="shared",
                pattern="random",
            ),
            data_phase(
                "/scratch/post/derived.h5",
                "write",
                xfer=30000,
                count_per_rank=700,
                api="posix",
                layout="shared",
                pattern="random",
            ),
        ),
    )


REAL_APP_BUILDERS = {
    "ra01-amrex": ra01_amrex,
    "ra02-e2e-original": ra02_e2e_original,
    "ra03-e2e-recollected": ra03_e2e_recollected,
    "ra04-openpmd-original": ra04_openpmd_original,
    "ra05-openpmd-recollected": ra05_openpmd_recollected,
    "ra06-hacc-io": ra06_hacc_io,
    "ra07-montage": ra07_montage,
    "ra08-qmcpack": ra08_qmcpack,
    "ra09-post-analysis": ra09_post_analysis,
}
