"""Simple-Bench: 10 rudimentary single-purpose workloads (paper §V-1).

Each models a small C program written to exhibit one targeted I/O issue
(some unavoidably exhibit a couple more, as the paper notes).  The traces
are small, low-volume, and highly uniform — "the easiest to diagnose".

Alignment convention: the simulated filesystem checks request offsets
against a 4 KiB block granularity, so power-of-two transfer sizes (4 KiB,
8 KiB, 1 MiB) stay aligned while odd sizes (1000 B, 47008 B) and shimmed
offsets are misaligned — matching how experts separate *small* from
*misaligned* requests when labeling.
"""

from __future__ import annotations

from repro.util.units import KiB, MiB
from repro.workloads.base import Workload
from repro.workloads.patterns import (
    data_phase,
    imbalanced_write_phase,
    metadata_phase,
    repetitive_read_phase,
    stdio_phase,
)

__all__ = ["SIMPLE_BENCH_BUILDERS"]


def sb01_small_writes() -> Workload:
    """Frequent 1000-byte independent MPI-IO writes, file per process."""
    return Workload(
        name="sb01-small-writes",
        exe="/home/user/sb/small_writes",
        nprocs=4,
        jobid=101,
        phases=(
            data_phase(
                "/scratch/sb01/out.dat",
                "write",
                xfer=1000,
                count_per_rank=5000,
                api="mpiio",
                layout="fpp",
            ),
        ),
    )


def sb02_small_reads() -> Workload:
    """Frequent 1000-byte independent MPI-IO reads, file per process."""
    return Workload(
        name="sb02-small-reads",
        exe="/home/user/sb/small_reads",
        nprocs=4,
        jobid=102,
        phases=(
            data_phase(
                "/scratch/sb02/in.dat",
                "read",
                xfer=1000,
                count_per_rank=5000,
                api="mpiio",
                layout="fpp",
            ),
        ),
    )


def sb03_misaligned_writes() -> Workload:
    """Large writes at offsets shifted off any block boundary."""
    return Workload(
        name="sb03-misaligned-writes",
        exe="/home/user/sb/misaligned_writes",
        nprocs=4,
        jobid=103,
        phases=(
            data_phase(
                "/scratch/sb03/out.dat",
                "write",
                xfer=1 * MiB,
                count_per_rank=40,
                api="mpiio",
                layout="fpp",
                unaligned_shim=17,
                mem_aligned=False,
            ),
        ),
    )


def sb04_misaligned_reads() -> Workload:
    """Large reads at offsets shifted off any block boundary."""
    return Workload(
        name="sb04-misaligned-reads",
        exe="/home/user/sb/misaligned_reads",
        nprocs=4,
        jobid=104,
        phases=(
            data_phase(
                "/scratch/sb04/in.dat",
                "read",
                xfer=1 * MiB,
                count_per_rank=40,
                api="mpiio",
                layout="fpp",
                unaligned_shim=17,
                mem_aligned=False,
            ),
        ),
    )


def sb05_metadata_storm() -> Workload:
    """A single process creating and stat-ing thousands of empty files."""
    return Workload(
        name="sb05-metadata-storm",
        exe="/home/user/sb/metadata_storm",
        nprocs=1,
        jobid=105,
        phases=(metadata_phase("/scratch/sb05/files", files_per_rank=1500),),
    )


def sb06_shared_file() -> Workload:
    """Eight ranks reading then rewriting one shared file independently."""
    return Workload(
        name="sb06-shared-file",
        exe="/home/user/sb/shared_file",
        nprocs=8,
        jobid=106,
        phases=(
            # Small per-rank header reads: negligible volume, not labeled,
            # but enough to trip fixed >10%-small-request triggers.
            data_phase(
                "/scratch/sb06/header.dat",
                "read",
                xfer=4 * KiB,
                count_per_rank=40,
                api="mpiio",
                layout="fpp",
            ),
            data_phase(
                "/scratch/sb06/shared.dat",
                "read",
                xfer=1 * MiB,
                count_per_rank=30,
                api="mpiio",
                layout="shared",
                pattern="strided",
            ),
            data_phase(
                "/scratch/sb06/shared.dat",
                "write",
                xfer=1 * MiB,
                count_per_rank=30,
                api="mpiio",
                layout="shared",
                pattern="strided",
            ),
        ),
    )


def sb07_repetitive_read() -> Workload:
    """Rank 0 re-reads the same 2 MiB region forty times."""
    return Workload(
        name="sb07-repetitive-read",
        exe="/home/user/sb/repetitive_read",
        nprocs=4,
        jobid=107,
        phases=(
            data_phase(
                "/scratch/sb07/input.dat",
                "read",
                xfer=1 * MiB,
                count_per_rank=10,
                api="mpiio",
                layout="fpp",
            ),
            repetitive_read_phase(
                "/scratch/sb07/input.dat.00000",
                region_bytes=2 * MiB,
                xfer=256 * KiB,
                repeats=40,
                nranks=1,
            ),
        ),
    )


def sb08_rank_imbalance() -> Workload:
    """Rank 0 issues 80% of all (small) write requests."""
    return Workload(
        name="sb08-rank-imbalance",
        exe="/home/user/sb/rank_imbalance",
        nprocs=8,
        jobid=108,
        phases=(
            data_phase(
                "/scratch/sb08/input.dat",
                "read",
                xfer=256 * KiB,
                count_per_rank=5,
                api="mpiio",
                layout="fpp",
            ),
            imbalanced_write_phase(
                "/scratch/sb08/out.dat",
                xfer=4 * KiB,
                total_count=20000,
                heavy_share=0.8,
                api="mpiio",
                layout="fpp",
            ),
        ),
    )


def sb09_stdio_write() -> Workload:
    """Bulk output funnelled through STDIO instead of POSIX/MPI-IO."""
    return Workload(
        name="sb09-stdio-write",
        exe="/home/user/sb/stdio_write",
        nprocs=4,
        jobid=109,
        num_osts=8,
        default_stripe_width=2,
        phases=(
            data_phase(
                "/scratch/sb09/header.dat",
                "write",
                xfer=1 * MiB,
                count_per_rank=2,
                api="mpiio",
                layout="fpp",
            ),
            stdio_phase(
                "/scratch/sb09/out.txt",
                "write",
                xfer=8 * KiB,
                count_per_rank=2000,
                layout="fpp",
            ),
        ),
    )


def sb10_stdio_read() -> Workload:
    """Bulk input funnelled through STDIO, plus small MPI-IO header reads."""
    return Workload(
        name="sb10-stdio-read",
        exe="/home/user/sb/stdio_read",
        nprocs=4,
        jobid=110,
        num_osts=8,
        default_stripe_width=2,
        phases=(
            data_phase(
                "/scratch/sb10/header.dat",
                "read",
                xfer=8 * KiB,
                count_per_rank=200,
                api="mpiio",
                layout="fpp",
            ),
            stdio_phase(
                "/scratch/sb10/in.txt",
                "read",
                xfer=4 * KiB,
                count_per_rank=2000,
                layout="fpp",
            ),
        ),
    )


# Trace id -> builder, in suite order.
SIMPLE_BENCH_BUILDERS = {
    "sb01-small-writes": sb01_small_writes,
    "sb02-small-reads": sb02_small_reads,
    "sb03-misaligned-writes": sb03_misaligned_writes,
    "sb04-misaligned-reads": sb04_misaligned_reads,
    "sb05-metadata-storm": sb05_metadata_storm,
    "sb06-shared-file": sb06_shared_file,
    "sb07-repetitive-read": sb07_repetitive_read,
    "sb08-rank-imbalance": sb08_rank_imbalance,
    "sb09-stdio-write": sb09_stdio_write,
    "sb10-stdio-read": sb10_stdio_read,
}
