"""The scenario registry: workloads + ground truth as a uniform extension surface.

Mirrors the tool registry (:mod:`repro.core.registry`): where a
``DiagnosticTool`` is "one trace in, one report out", a :class:`Scenario`
is "nothing in, one labeled trace out" — a workload builder plus the
expert ground truth (``root_causes``), a difficulty tier, and free-form
tags.  Everything that enumerates workloads — the TraceBench build, the
evaluation harness, the batch runner, and the CLI — resolves scenarios
through this registry, so adding a workload to the whole system is one
``register_scenario`` call.

Built-in scenarios load lazily from two modules:

* :mod:`repro.tracebench.spec` — the paper's 40 TraceBench traces, tagged
  ``tracebench`` plus their source;
* :mod:`repro.workloads.pathologies` — the extended pathology tier (12
  scenarios, tagged ``pathology``), including a clean-baseline control.

Ordering is registration order (suite order), not alphabetical: the
TraceBench sources keep their paper grouping and tables stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.issues import ISSUE_KEYS
from repro.util.lookup import RegistryLookupError
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.tracebench.dataset import LabeledTrace

__all__ = [
    "Scenario",
    "SeriesScenario",
    "ScenarioNotFoundError",
    "SeriesScenarioNotFoundError",
    "DIFFICULTIES",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "available_scenarios",
    "iter_scenarios",
    "available_tags",
    "select_scenarios",
    "build_scenario",
    "register_series_scenario",
    "unregister_series_scenario",
    "get_series_scenario",
    "available_series_scenarios",
    "iter_series_scenarios",
    "build_series",
]

# Tiers roughly track how much of the ground truth survives into counters:
# 'easy' single-issue traces, 'medium' realistic mis-tunings, 'hard'
# multi-issue or counter-ambiguous traces, 'control' issue-free baselines.
DIFFICULTIES = ("easy", "medium", "hard", "control")


@dataclass(frozen=True)
class Scenario:
    """One registered workload with its expert ground truth.

    ``root_causes`` uses the Table II issue vocabulary
    (:data:`repro.core.issues.ISSUE_KEYS`); an empty set is legal and marks
    an issue-free control.  ``tags`` drive CLI/harness selection; a
    scenario also matches its own ``name``, ``source``, and ``difficulty``
    as selectors.
    """

    name: str
    source: str
    builder: Callable[[], Workload]
    root_causes: frozenset[str]
    difficulty: str = "medium"
    tags: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.difficulty not in DIFFICULTIES:
            raise ValueError(
                f"unknown difficulty {self.difficulty!r}; expected one of {DIFFICULTIES}"
            )
        unknown = set(self.root_causes) - set(ISSUE_KEYS)
        if unknown:
            raise ValueError(f"unknown root causes for {self.name}: {sorted(unknown)}")

    def matches(self, selector: str) -> bool:
        """Whether a CLI/harness selector token picks this scenario."""
        return selector == self.name or selector in self.selectors()

    def selectors(self) -> frozenset[str]:
        """Every non-name token that selects this scenario."""
        return frozenset((self.source, self.difficulty, *self.tags))


class ScenarioNotFoundError(RegistryLookupError):
    """Raised for a scenario name (or selector) nobody registered."""

    noun = "scenario"
    available_label = "available"
    cli_noun = "scenario selector"

    def hints(self) -> tuple[str, ...]:
        lines = []
        # Difficulty selectors are case-sensitive like every other token;
        # a near-miss on one gets a targeted hint.
        for token in self.unknown:
            if token.lower() in DIFFICULTIES and token not in DIFFICULTIES:
                lines.append(
                    f"hint: difficulty tiers are lowercase — did you mean {token.lower()!r}?"
                )
        lines.append("selectors match a scenario name, tag, source, or difficulty;")
        lines.append(f"difficulty tiers: {', '.join(DIFFICULTIES)}")
        lines.append(f"available tags: {', '.join(available_tags())}")
        return tuple(lines)

    def available_cli_line(self) -> str:
        return "available scenarios: see `python -m repro list-scenarios`"


class SeriesScenarioNotFoundError(ScenarioNotFoundError):
    """Raised for a series-scenario name nobody registered.

    Subclasses :class:`ScenarioNotFoundError` so callers catching the
    single-trace variant keep working, but renders against the series
    registry (series have no tag/difficulty selector surface).
    """

    noun = "series scenario"
    available_label = "available series scenarios"
    cli_noun = "series scenario"

    def hints(self) -> tuple[str, ...]:
        return ()

    def available_cli_line(self) -> str:
        return f"available series scenarios: {self.options()}"


_REGISTRY: dict[str, Scenario] = {}

# Built-in scenarios resolve lazily so importing the registry stays cheap
# and cycle-free (spec -> workloads, pathologies -> patterns).
_BUILTIN_MODULES = (
    "repro.tracebench.spec",
    "repro.workloads.pathologies",
    "repro.workloads.fuzz",
)
_builtins_loaded = False
_builtins_loading = False  # reentrancy guard: builtins register during import


def _ensure_builtins() -> None:
    global _builtins_loaded, _builtins_loading
    if _builtins_loaded or _builtins_loading:
        return
    import importlib

    _builtins_loading = True
    try:
        for module in _BUILTIN_MODULES:
            importlib.import_module(module)
        # Set only once every builtin imported cleanly, so a failed import
        # surfaces again instead of leaving the registry silently partial.
        _builtins_loaded = True
    finally:
        _builtins_loading = False


def register_scenario(scenario: Scenario, *, replace: bool = False) -> Scenario:
    """Register ``scenario`` under its name.

    Registering an existing name raises unless ``replace=True`` — silently
    shadowing a benchmark scenario would corrupt ground truth.  Built-in
    scenarios load first so a plugin collision with a benchmark name is
    caught here, at the plugin's call site, not inside a later query.
    """
    _ensure_builtins()
    if not replace and scenario.name in _REGISTRY:
        raise ValueError(
            f"scenario {scenario.name!r} is already registered (pass replace=True)"
        )
    _REGISTRY[scenario.name] = scenario
    return scenario


def unregister_scenario(name: str) -> None:
    """Remove a registration (no-op if absent); used by tests and plugins."""
    _REGISTRY.pop(name, None)


def available_scenarios(tag: str | None = None) -> tuple[str, ...]:
    """Registered scenario names in registration (suite) order.

    ``tag`` filters by any selector token: a tag, a source, a difficulty
    tier, or an exact name.
    """
    return tuple(s.name for s in iter_scenarios(tag))


def iter_scenarios(tag: str | None = None) -> tuple[Scenario, ...]:
    """Registered :class:`Scenario` objects, optionally selector-filtered."""
    _ensure_builtins()
    scenarios = tuple(_REGISTRY.values())
    if tag is None:
        return scenarios
    return tuple(s for s in scenarios if s.matches(tag))


def available_tags() -> tuple[str, ...]:
    """Every selector token (tags, sources, difficulties) in use, sorted."""
    _ensure_builtins()
    tokens: set[str] = set()
    for scenario in _REGISTRY.values():
        tokens |= scenario.selectors()
    return tuple(sorted(tokens))


def get_scenario(name: str) -> Scenario:
    """Look up one scenario by exact name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioNotFoundError(name, available_scenarios()) from None


def select_scenarios(selectors: Iterable[str]) -> list[Scenario]:
    """Resolve selector tokens (names and/or tags) to scenarios, in order.

    Each token picks every scenario it matches; duplicates collapse while
    preserving first-match order.  Tokens matching nothing raise one
    :class:`ScenarioNotFoundError` listing all of them, so callers (the
    CLI among them) can show a single friendly error.
    """
    _ensure_builtins()
    picked: dict[str, Scenario] = {}
    unknown: list[str] = []
    for token in selectors:
        matched = [s for s in _REGISTRY.values() if s.matches(token)]
        if not matched:
            unknown.append(token)
            continue
        for scenario in matched:
            picked.setdefault(scenario.name, scenario)
    if unknown:
        raise ScenarioNotFoundError(unknown, available_scenarios())
    return list(picked.values())


def build_scenario(scenario: Scenario | str, seed: int = 0) -> "LabeledTrace":
    """Run one scenario's workload and return the labeled trace."""
    from repro.tracebench.dataset import LabeledTrace

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    workload = scenario.builder()
    log, _result = workload.run(seed=seed)
    return LabeledTrace(
        trace_id=scenario.name,
        source=scenario.source,
        log=log,
        labels=scenario.root_causes,
        description=scenario.description or workload.exe,
        difficulty=scenario.difficulty,
    )


# ---------------------------------------------------------------------------
# Series scenarios: whole run *sequences* with a declared inflection point.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeriesScenario:
    """One registered run series: a base workload that degrades mid-series.

    A series sequences two already-registered single-trace scenarios: runs
    before ``inflection_run`` build ``base``, runs from ``inflection_run``
    on build ``degraded`` (``inflection_run=None`` marks a control series
    that never degrades).  ``root_causes`` is the series-level ground
    truth — the ``trend_regression`` key plus whatever issues the
    degradation injects — against which the longitudinal channel is graded
    (see :mod:`repro.regression` and ``benchmarks/eval_gate.py``).

    Per-run seeds are ``seed + run_index``, so healthy runs carry natural
    run-to-run variation for the baseline to absorb.
    """

    name: str
    source: str
    base: str
    degraded: str
    n_runs: int
    inflection_run: int | None
    root_causes: frozenset[str]
    baseline_runs: int = 3
    difficulty: str = "medium"
    tags: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("series scenario name must be non-empty")
        if self.difficulty not in DIFFICULTIES:
            raise ValueError(
                f"unknown difficulty {self.difficulty!r}; expected one of {DIFFICULTIES}"
            )
        unknown = set(self.root_causes) - set(ISSUE_KEYS)
        if unknown:
            raise ValueError(f"unknown root causes for {self.name}: {sorted(unknown)}")
        if self.n_runs < 2:
            raise ValueError("a series needs at least two runs")
        if not 1 <= self.baseline_runs < self.n_runs:
            raise ValueError("baseline_runs must be in [1, n_runs)")
        if self.inflection_run is not None and not (
            self.baseline_runs <= self.inflection_run < self.n_runs
        ):
            raise ValueError(
                "inflection_run must land after the baseline window and "
                "before the series ends (or be None for a control)"
            )
        if self.inflection_run is None and "trend_regression" in self.root_causes:
            raise ValueError("a control series cannot claim trend_regression")
        if self.inflection_run is not None and "trend_regression" not in self.root_causes:
            raise ValueError("a degrading series must claim trend_regression")

    def scenario_for_run(self, run_index: int) -> Scenario:
        """The single-trace scenario backing run ``run_index``."""
        if self.inflection_run is not None and run_index >= self.inflection_run:
            return get_scenario(self.degraded)
        return get_scenario(self.base)


_SERIES_REGISTRY: dict[str, SeriesScenario] = {}

_SERIES_BUILTIN_MODULES = ("repro.workloads.series",)
_series_builtins_loaded = False
_series_builtins_loading = False


def _ensure_series_builtins() -> None:
    global _series_builtins_loaded, _series_builtins_loading
    if _series_builtins_loaded or _series_builtins_loading:
        return
    import importlib

    _series_builtins_loading = True
    try:
        for module in _SERIES_BUILTIN_MODULES:
            importlib.import_module(module)
        _series_builtins_loaded = True
    finally:
        _series_builtins_loading = False


def register_series_scenario(series: SeriesScenario, *, replace: bool = False) -> SeriesScenario:
    """Register ``series`` under its name (same contract as scenarios)."""
    _ensure_series_builtins()
    if not replace and series.name in _SERIES_REGISTRY:
        raise ValueError(
            f"series scenario {series.name!r} is already registered (pass replace=True)"
        )
    _SERIES_REGISTRY[series.name] = series
    return series


def unregister_series_scenario(name: str) -> None:
    """Remove a series registration (no-op if absent)."""
    _SERIES_REGISTRY.pop(name, None)


def iter_series_scenarios(tag: str | None = None) -> tuple[SeriesScenario, ...]:
    """Registered series scenarios in registration order, tag-filtered."""
    _ensure_series_builtins()
    series = tuple(_SERIES_REGISTRY.values())
    if tag is None:
        return series
    return tuple(
        s
        for s in series
        if tag == s.name or tag in (s.source, s.difficulty, *s.tags)
    )


def available_series_scenarios(tag: str | None = None) -> tuple[str, ...]:
    """Registered series names in registration order."""
    return tuple(s.name for s in iter_series_scenarios(tag))


def get_series_scenario(name: str) -> SeriesScenario:
    """Look up one series scenario by exact name."""
    _ensure_series_builtins()
    try:
        return _SERIES_REGISTRY[name]
    except KeyError:
        raise SeriesScenarioNotFoundError(name, available_series_scenarios()) from None


def build_series(series: SeriesScenario | str, seed: int = 0) -> list["LabeledTrace"]:
    """Run every workload of a series, in run order.

    Run ``i`` gets trace id ``<series>/run<i>`` and seed ``seed + i``;
    each trace carries the *per-run* labels of its backing scenario (the
    series-level ground truth stays on the :class:`SeriesScenario`).
    """
    from repro.tracebench.dataset import LabeledTrace

    if isinstance(series, str):
        series = get_series_scenario(series)
    traces: list[LabeledTrace] = []
    for run_index in range(series.n_runs):
        backing = series.scenario_for_run(run_index)
        workload = backing.builder()
        log, _result = workload.run(seed=seed + run_index)
        traces.append(
            LabeledTrace(
                trace_id=f"{series.name}/run{run_index:02d}",
                source=series.source,
                log=log,
                labels=backing.root_causes,
                description=backing.description or workload.exe,
                difficulty=series.difficulty,
            )
        )
    return traces
