"""Generative scenario fuzzer: seeded pathology compositions with derived labels.

The 61 curated scenarios pin the diagnosis pipeline at 61 points; this
module turns them into a *distribution*.  A seeded generator samples
compositions of 2-4 existing pathology phases (false sharing, metadata
churn, checkpoint bursts, stragglers, slow OSTs, fsync floods, ...) with
randomized intensities, sizes, rank counts, and OST layouts.  Ground-truth
labels are **derived from the injected phases**, not asserted by hand:
every ingredient draw sizes itself so the corresponding expert rule is
guaranteed to clear its threshold (request counts above
``small_min_requests``, metadata visits sized against a generous upper
bound of the composition's data time, stdio volume proportional to the
POSIX write volume, ...), and conversely stays clear of every *other*
rule's trigger (shared-file records held under 16 MiB where the label is
not intended, checkpoint gap counts kept below the stall rule's minimum,
OST layouts kept symmetric).

Three surfaces:

- :func:`generate_compositions` / :func:`generate_scenarios` — the seeded
  sampler.  Generation is a pure function of ``(seed, index)`` via
  :func:`repro.util.rng.rng_for`, so the same seed reproduces the same
  scenario set in any process, and a longer sweep is a strict prefix
  extension of a shorter one.
- :data:`ADVERSARIAL_PAIRS` — fixed bare/masked twins generalizing
  path21's masking idea to the counter rules: the masked twin adds a
  *diluting* workload that pushes a firing rule back under its threshold
  while the injected pathology is still present.  The recall gap on the
  masked twins is a documented, asserted known gap (see
  ``benchmarks/eval_gate.py``).
- :data:`RAMPS` / :func:`find_detection_threshold` — intensity ramps that
  binary-search the masking intensity at which an expert rule stops
  firing, measuring each rule's empirical detection threshold.

Every sample registers as a normal :class:`~repro.workloads.scenarios.Scenario`
under the ``fuzz`` tag, so the harness, batch runner, and CLI consume the
generated tier unchanged (``python -m repro evaluate --scenarios fuzz``).
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.sim.timing import PerfModel
from repro.util.rng import rng_for
from repro.util.units import KiB, MiB
from repro.workloads.base import PhaseFn, Workload
from repro.workloads.patterns import (
    checkpoint_burst_phase,
    data_phase,
    false_sharing_phase,
    fsync_per_write_phase,
    interference_stall_phase,
    lock_convoy_phase,
    metadata_churn_phase,
    repetitive_read_phase,
    stdio_phase,
    straggler_phase,
)
from repro.workloads.scenarios import Scenario, register_scenario

DEFAULT_FUZZ_SEED = 0
DEFAULT_FUZZ_COUNT = 10
FUZZ_SOURCE = "fuzz"
COMPOSITION_TAGS = ("fuzz", "fuzz-composition")
ADVERSARIAL_TAGS = ("fuzz", "fuzz-adversarial")

# Mirrors of the simulator's PerfModel defaults, used only to *upper-bound*
# data time when sizing the metadata-churn ingredient (overestimating data
# time merely makes the churn larger, never mislabels).
_OP_LAT = 50e-6
_BW = 500.0 * MiB  # bytes/second per OST lane
_SEEK = 2e-3
_VISIT_SECONDS = 3 * 400e-6  # open + stat + close, each one MDT round-trip
# MPI-IO requests lower 1:1 to POSIX; time can be attributed to both module
# records, so MPI-IO ingredients double their estimate to stay an upper bound.
_MPIIO_TIME = 2.0

_TEMPORAL_PRIMARIES = ("straggler", "slowost", "lockconvoy", "interfstall")
_PRIMARIES = ("falseshare", "stride", "checkpoint", "fsyncflood") + _TEMPORAL_PRIMARIES


@dataclass(frozen=True)
class IngredientDraw:
    """One sampled pathology phase plus everything label derivation needs."""

    key: str
    summary: str
    labels: frozenset[str]
    phase: PhaseFn
    data_seconds: float  # generous upper estimate of the phase's data time
    posix_write_bytes: int  # bytes written through POSIX (incl. lowered MPI-IO)
    mpiio: bool
    perf: PerfModel | None = None
    slow_osts: dict[int, float] = field(default_factory=dict)
    stripe_overrides: dict[str, tuple[int, int, int]] = field(default_factory=dict)


def _draw_false_sharing(rng: np.random.Generator, nprocs: int, root: str) -> IngredientDraw:
    record = int(rng.choice((512, 1024)))
    count = -(-int(rng.integers(1200, 2001)) // nprocs)
    n_ops = count * nprocs
    # record * n_ops <= 2 MiB: far below the 16 MiB shared-file threshold,
    # so shared_file_access is intentionally absent from the label set.
    return IngredientDraw(
        key="falseshare",
        summary=f"false sharing: {n_ops} interleaved {record} B records",
        labels=frozenset({"small_write", "misaligned_write", "no_collective_write"}),
        phase=false_sharing_phase(f"{root}/falseshare.dat", record, count),
        data_seconds=n_ops * (_OP_LAT + record / _BW + _SEEK) * _MPIIO_TIME,
        posix_write_bytes=record * n_ops,
        mpiio=True,
    )


def _draw_stride(rng: np.random.Generator, nprocs: int, root: str) -> IngredientDraw:
    count = -(-24 // nprocs) + int(rng.integers(0, max(2, 40 // nprocs)))
    n_ops = count * nprocs
    return IngredientDraw(
        key="stride",
        summary=f"misaligned stride: {n_ops} x 1 MiB shifted 2080 B off every boundary",
        labels=frozenset({"misaligned_write", "shared_file_access", "no_collective_write"}),
        phase=data_phase(
            f"{root}/stride.dat",
            "write",
            1 * MiB,
            count,
            api="mpiio",
            layout="shared",
            pattern="strided",
            unaligned_shim=2080,
            mem_aligned=False,
        ),
        data_seconds=n_ops * (_OP_LAT + 1 * MiB / _BW + _SEEK) * _MPIIO_TIME,
        posix_write_bytes=n_ops * MiB,
        mpiio=True,
    )


def _draw_checkpoint(rng: np.random.Generator, nprocs: int, root: str) -> IngredientDraw:
    writes_per_burst = int(rng.integers(6, 11))
    bursts = int(rng.integers(3, 6))  # <= 4 compute gaps: below the stall rule's 6
    while writes_per_burst * bursts * nprocs < 80:  # keep the shared record >= 20 MiB
        writes_per_burst += 1
    n_ops = writes_per_burst * bursts * nprocs
    return IngredientDraw(
        key="checkpoint",
        summary=f"checkpoint bursts: {bursts} x {writes_per_burst} x 256 KiB per rank",
        labels=frozenset({"shared_file_access", "no_collective_write"}),
        phase=checkpoint_burst_phase(
            f"{root}/checkpoint.dat", 256 * KiB, writes_per_burst, bursts
        ),
        data_seconds=n_ops * (_OP_LAT + 256 * KiB / _BW + _SEEK) * _MPIIO_TIME,
        posix_write_bytes=n_ops * 256 * KiB,
        mpiio=True,
    )


def _draw_fsync_flood(rng: np.random.Generator, nprocs: int, root: str) -> IngredientDraw:
    count = -(-2400 // nprocs) + int(rng.integers(0, max(2, 400 // nprocs)))
    n_ops = count * nprocs
    return IngredientDraw(
        key="fsyncflood",
        summary=f"fsync flood: {n_ops} x 4 KiB appends, each with its own fsync",
        labels=frozenset({"small_write", "high_metadata_load"}),
        phase=fsync_per_write_phase(f"{root}/wal.dat", 4 * KiB, count),
        data_seconds=n_ops * (_OP_LAT + 4 * KiB / _BW),
        posix_write_bytes=n_ops * 4 * KiB,
        perf=PerfModel(sync_latency=2e-3),
        mpiio=False,
    )


def _draw_straggler(rng: np.random.Generator, nprocs: int, root: str) -> IngredientDraw:
    count = int(rng.integers(16, 33))
    straggler_rank = int(rng.integers(0, nprocs))
    slow_factor = 256
    return IngredientDraw(
        key="straggler",
        summary=(
            f"straggler: rank {straggler_rank} trickles its {count} MiB "
            f"in {slow_factor}x smaller pieces"
        ),
        labels=frozenset(
            {"rank_imbalance", "shared_file_access", "small_write", "no_collective_write"}
        ),
        phase=straggler_phase(
            f"{root}/field.dat",
            1 * MiB,
            count,
            straggler_rank=straggler_rank,
            slow_factor=slow_factor,
        ),
        data_seconds=(
            count * slow_factor * (_OP_LAT + 4 * KiB / _BW)
            + (nprocs - 1) * count * (_OP_LAT + 1 * MiB / _BW + _SEEK)
        )
        * _MPIIO_TIME,
        posix_write_bytes=count * nprocs * MiB,
        mpiio=True,
    )


def _draw_slow_ost(
    rng: np.random.Generator, nprocs: int, num_osts: int, root: str
) -> IngredientDraw:
    count = -(-160 // nprocs) + int(rng.integers(0, max(2, 96 // nprocs)))
    n_ops = count * nprocs
    ost = int(rng.integers(0, num_osts))
    factor = float(rng.choice((4.0, 5.0, 6.0)))
    path = f"{root}/hotspot.dat"
    return IngredientDraw(
        key="slowost",
        summary=f"slow OST: stripe-wide shared write with OST {ost} serving {factor:.0f}x slower",
        labels=frozenset({"server_imbalance", "shared_file_access", "no_collective_write"}),
        phase=data_phase(path, "write", 1 * MiB, count, api="mpiio", layout="shared"),
        data_seconds=n_ops
        * (_OP_LAT + 1 * MiB / _BW + _SEEK)
        * (1.0 + (factor - 1.0) / num_osts)
        * _MPIIO_TIME,
        posix_write_bytes=n_ops * MiB,
        mpiio=True,
        slow_osts={ost: factor},
        stripe_overrides={path: (1 * MiB, num_osts, 0)},
    )


def _draw_lock_convoy(rng: np.random.Generator, nprocs: int, root: str) -> IngredientDraw:
    rounds = -(-520 // nprocs) + int(rng.integers(0, 41))
    n_ops = rounds * nprocs
    return IngredientDraw(
        key="lockconvoy",
        summary=f"lock convoy: {rounds} rounds of token-passing 64 KiB shared writes",
        labels=frozenset(
            {"lock_contention", "shared_file_access", "small_write", "no_collective_write"}
        ),
        phase=lock_convoy_phase(f"{root}/convoy.dat", 64 * KiB, rounds),
        # The convoy serializes; bound data time by the full serialized span
        # per rank in case lock waits are attributed to the writes.
        data_seconds=n_ops * (_OP_LAT + 64 * KiB / _BW) * nprocs,
        posix_write_bytes=n_ops * 64 * KiB,
        mpiio=True,
    )


def _draw_interference_stall(rng: np.random.Generator, nprocs: int, root: str) -> IngredientDraw:
    writes_per_window = int(rng.integers(4, 9))
    stalls = int(rng.integers(8, 13))  # comfortably above the 6-gap minimum
    stall_seconds = round(float(rng.uniform(0.5, 0.9)), 2)
    n_ops = writes_per_window * (stalls + 1) * nprocs
    return IngredientDraw(
        key="interfstall",
        summary=(
            f"interference: sequential streams frozen {stalls} times "
            f"for {stall_seconds:.2f} s each"
        ),
        labels=frozenset({"io_stall"}),
        phase=interference_stall_phase(
            f"{root}/stream.dat",
            1 * MiB,
            writes_per_window,
            stalls,
            stall_seconds=stall_seconds,
        ),
        data_seconds=n_ops * (_OP_LAT + 1 * MiB / _BW),
        posix_write_bytes=n_ops * MiB,
        mpiio=False,
    )


def _draw_random_reader(rng: np.random.Generator, nprocs: int, root: str) -> IngredientDraw:
    count = -(-640 // nprocs) + int(rng.integers(0, max(2, 360 // nprocs)))
    n_ops = count * nprocs
    # n_ops * 4 KiB <= 4 MiB: below the shared-file threshold by design.
    return IngredientDraw(
        key="randread",
        summary=f"random reader: {n_ops} shuffled 4 KiB reads on one shared file",
        labels=frozenset({"random_read", "small_read"}),
        phase=data_phase(
            f"{root}/lookup.dat", "read", 4 * KiB, count, layout="shared", pattern="random"
        ),
        data_seconds=n_ops * (_OP_LAT + 4 * KiB / _BW + _SEEK),
        posix_write_bytes=0,
        mpiio=False,
    )


def _draw_repetitive_reader(rng: np.random.Generator, nprocs: int, root: str) -> IngredientDraw:
    repeats = int(rng.integers(6, 13))
    region = 8 * MiB
    passes = region // MiB
    return IngredientDraw(
        key="reread",
        summary=f"repetitive reader: every rank re-reads the same 8 MiB {repeats} times",
        labels=frozenset({"repetitive_read", "shared_file_access"}),
        phase=repetitive_read_phase(f"{root}/input.dat", region, 1 * MiB, repeats),
        data_seconds=nprocs * repeats * (passes * (_OP_LAT + 1 * MiB / _BW) + _SEEK),
        posix_write_bytes=0,
        mpiio=False,
    )


def _draw_stdio_log(
    rng: np.random.Generator, nprocs: int, root: str, posix_write_bytes: int
) -> IngredientDraw:
    # The stdio share rule needs STDIO bytes >= 30% of all bytes written;
    # size the log stream proportionally to the composition's POSIX volume.
    ratio = float(rng.uniform(0.8, 1.6))
    total = max(int(ratio * posix_write_bytes), 2 * MiB)
    count = -(-total // (8 * KiB * nprocs))
    n_ops = count * nprocs
    return IngredientDraw(
        key="stdio",
        summary=f"stdio log: {n_ops} x 8 KiB fprintf-style appends",
        labels=frozenset({"low_level_write"}),
        phase=stdio_phase(f"{root}/app.log", "write", 8 * KiB, count),
        data_seconds=n_ops * (_OP_LAT + 8 * KiB / _BW),
        posix_write_bytes=0,
        mpiio=False,
    )


def _draw_churn(
    rng: np.random.Generator, nprocs: int, root: str, data_seconds: float
) -> IngredientDraw:
    cycles = int(rng.choice((2, 3)))
    # Size the flood so metadata time clears the 40% fraction with margin
    # against the (over-estimated) data time of every other ingredient,
    # and op count clears the 2000-op minimum.
    visits = max(1000, math.ceil(1.2 * data_seconds / _VISIT_SECONDS))
    files = max(1, -(-visits // (nprocs * (1 + cycles))))
    n_visits = files * nprocs * (1 + cycles)
    return IngredientDraw(
        key="churn",
        summary=f"metadata churn: {n_visits} open/stat/close visits over {files * nprocs} files",
        labels=frozenset({"high_metadata_load"}),
        phase=metadata_churn_phase(f"{root}/staging", files, cycles=cycles),
        data_seconds=0.0,
        posix_write_bytes=0,
        mpiio=False,
    )


@dataclass(frozen=True)
class FuzzComposition:
    """One sampled composition: 2-4 pathology phases plus derived ground truth."""

    seed: int
    index: int
    nprocs: int
    num_osts: int
    primary: str
    ingredients: tuple[IngredientDraw, ...]  # in phase order
    labels: frozenset[str]

    @property
    def name(self) -> str:
        keys = "+".join(d.key for d in self.ingredients)
        return f"fuzz-s{self.seed}-{self.index:03d}-{keys}"

    @property
    def description(self) -> str:
        return "; ".join(d.summary for d in self.ingredients)

    def workload(self) -> Workload:
        perf: PerfModel | None = None
        slow_osts: dict[int, float] = {}
        stripe_overrides: dict[str, tuple] = {}
        for draw in self.ingredients:
            if draw.perf is not None:
                perf = draw.perf
            slow_osts.update(draw.slow_osts)
            stripe_overrides.update(draw.stripe_overrides)
        return Workload(
            name=self.name,
            exe=f"/opt/fuzz/{self.primary}",
            nprocs=self.nprocs,
            phases=tuple(d.phase for d in self.ingredients),
            uses_mpi=any(d.mpiio for d in self.ingredients),
            jobid=7000 + self.index,
            num_osts=self.num_osts,
            default_stripe_width=self.num_osts,
            stripe_overrides=stripe_overrides,
            perf=perf,
            slow_osts=slow_osts,
        )

    def scenario(self) -> Scenario:
        return Scenario(
            name=self.name,
            source=FUZZ_SOURCE,
            builder=self.workload,
            root_causes=self.labels,
            difficulty="medium",
            tags=COMPOSITION_TAGS,
            description=self.description,
        )


def sample_composition(seed: int, index: int) -> FuzzComposition:
    """Sample composition ``index`` of the stream rooted at ``seed``.

    A pure function of ``(seed, index)``: the RNG is scoped per index, so
    sweeps are prefix-stable and reproducible across processes.
    """
    rng = rng_for(seed, "fuzz", index)
    nprocs = int(rng.choice((4, 8, 16)))
    num_osts = int(rng.choice((4, 8)))
    primary_key = str(rng.choice(_PRIMARIES))
    root = f"/scratch/fuzz/s{seed}/{index:03d}"

    if primary_key in _TEMPORAL_PRIMARIES:
        # Temporal ground truth must own the DXT span: metadata churn is the
        # only secondary that emits no segments at all.
        secondary_keys = ["churn"]
    elif primary_key == "fsyncflood":
        pool: tuple[str, ...] = ("churn", "stdio")
        n = int(rng.integers(1, len(pool) + 1))
        secondary_keys = [str(k) for k in rng.choice(pool, size=n, replace=False)]
    else:
        pool = ("reader", "churn", "stdio")
        n = int(rng.integers(1, len(pool) + 1))
        secondary_keys = [str(k) for k in rng.choice(pool, size=n, replace=False)]
    if "reader" in secondary_keys:
        kind = str(rng.choice(("randread", "reread")))
        secondary_keys[secondary_keys.index("reader")] = kind

    if primary_key == "falseshare":
        primary = _draw_false_sharing(rng, nprocs, root)
    elif primary_key == "stride":
        primary = _draw_stride(rng, nprocs, root)
    elif primary_key == "checkpoint":
        primary = _draw_checkpoint(rng, nprocs, root)
    elif primary_key == "fsyncflood":
        primary = _draw_fsync_flood(rng, nprocs, root)
    elif primary_key == "straggler":
        primary = _draw_straggler(rng, nprocs, root)
    elif primary_key == "slowost":
        primary = _draw_slow_ost(rng, nprocs, num_osts, root)
    elif primary_key == "lockconvoy":
        primary = _draw_lock_convoy(rng, nprocs, root)
    else:
        primary = _draw_interference_stall(rng, nprocs, root)

    reader: IngredientDraw | None = None
    if "randread" in secondary_keys:
        reader = _draw_random_reader(rng, nprocs, root)
    elif "reread" in secondary_keys:
        reader = _draw_repetitive_reader(rng, nprocs, root)

    stdio: IngredientDraw | None = None
    if "stdio" in secondary_keys:
        stdio = _draw_stdio_log(rng, nprocs, root, primary.posix_write_bytes)

    churn: IngredientDraw | None = None
    if "churn" in secondary_keys:
        others = [primary] + [d for d in (reader, stdio) if d is not None]
        churn = _draw_churn(rng, nprocs, root, sum(d.data_seconds for d in others))

    # Phase order: churn (no DXT segments) first, readers next, the primary
    # pathology, then the stdio log stream.
    ingredients = tuple(d for d in (churn, reader, primary, stdio) if d is not None)
    labels = frozenset().union(*(d.labels for d in ingredients))
    if not any(d.mpiio for d in ingredients):
        labels |= {"no_mpi"}
    return FuzzComposition(
        seed=seed,
        index=index,
        nprocs=nprocs,
        num_osts=num_osts,
        primary=primary.key,
        ingredients=ingredients,
        labels=labels,
    )


def generate_compositions(
    seed: int = DEFAULT_FUZZ_SEED, count: int = DEFAULT_FUZZ_COUNT
) -> list[FuzzComposition]:
    """The first ``count`` compositions of the stream rooted at ``seed``."""
    return [sample_composition(seed, i) for i in range(count)]


def generate_scenarios(
    seed: int = DEFAULT_FUZZ_SEED, count: int = DEFAULT_FUZZ_COUNT
) -> list[Scenario]:
    """The same stream, packaged as registrable scenarios."""
    return [c.scenario() for c in generate_compositions(seed, count)]


# --------------------------------------------------------------------------
# Adversarial pairs: pathology + masking workload
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AdversarialPair:
    """A bare pathology and a masked twin that dilutes its counter signature.

    ``masked_keys`` are recoverable from the bare trace but pushed back
    under their rule's threshold in the masked twin — the *known gap* the
    evaluation gate documents and asserts.
    """

    name: str
    bare_name: str
    masked_name: str
    masked_keys: frozenset[str]
    description: str


_ADV_ROOT = "/scratch/fuzz/adv"


def _adv_small_write_bare() -> Workload:
    return Workload(
        name="fuzz-adv-smallwrite-bare",
        exe="/opt/fuzz/adv",
        nprocs=8,
        num_osts=4,
        default_stripe_width=4,
        phases=(false_sharing_phase(f"{_ADV_ROOT}/records.dat", 1024, 320),),
    )


def _adv_small_write_masked() -> Workload:
    # 3840 aligned 1 MiB writes dilute 2560 interleaved 1 KiB records:
    # small fraction 0.40 < 0.60, unaligned fraction 0.30 < 0.50.
    return Workload(
        name="fuzz-adv-smallwrite-masked",
        exe="/opt/fuzz/adv",
        nprocs=8,
        num_osts=4,
        default_stripe_width=4,
        phases=(
            false_sharing_phase(f"{_ADV_ROOT}/records.dat", 1024, 320),
            data_phase(f"{_ADV_ROOT}/bulk.dat", "write", 1 * MiB, 480, api="mpiio"),
        ),
    )


def _adv_metadata_bare() -> Workload:
    return Workload(
        name="fuzz-adv-metadata-bare",
        exe="/opt/fuzz/adv",
        nprocs=8,
        num_osts=4,
        default_stripe_width=4,
        uses_mpi=False,
        phases=(metadata_churn_phase(f"{_ADV_ROOT}/staging", 120, cycles=2),),
    )


def _adv_metadata_masked() -> Workload:
    # ~8.2 s of bulk sequential data time dilutes ~3.5 s of metadata time:
    # the metadata fraction drops to ~0.30 < 0.40.
    return Workload(
        name="fuzz-adv-metadata-masked",
        exe="/opt/fuzz/adv",
        nprocs=8,
        num_osts=4,
        default_stripe_width=4,
        uses_mpi=False,
        phases=(
            metadata_churn_phase(f"{_ADV_ROOT}/staging", 120, cycles=2),
            data_phase(f"{_ADV_ROOT}/bulk.dat", "write", 1 * MiB, 500),
        ),
    )


def _adv_random_read_bare() -> Workload:
    return Workload(
        name="fuzz-adv-randread-bare",
        exe="/opt/fuzz/adv",
        nprocs=8,
        num_osts=4,
        default_stripe_width=4,
        uses_mpi=False,
        phases=(
            data_phase(
                f"{_ADV_ROOT}/lookup.dat", "read", 4 * KiB, 800, layout="shared", pattern="random"
            ),
        ),
    )


def _adv_random_read_masked() -> Workload:
    # 6400 sequential 1 MiB reads lift the sequential fraction to ~0.75 > 0.70
    # and halve the small fraction to 0.50 < 0.60.
    return Workload(
        name="fuzz-adv-randread-masked",
        exe="/opt/fuzz/adv",
        nprocs=8,
        num_osts=4,
        default_stripe_width=4,
        uses_mpi=False,
        phases=(
            data_phase(
                f"{_ADV_ROOT}/lookup.dat", "read", 4 * KiB, 800, layout="shared", pattern="random"
            ),
            data_phase(f"{_ADV_ROOT}/scan.dat", "read", 1 * MiB, 800, layout="shared"),
        ),
    )


_ADVERSARIAL_SPECS: tuple[tuple[AdversarialPair, Callable[[], Workload], Callable[[], Workload], frozenset[str]], ...] = (
    (
        AdversarialPair(
            name="small-write-dilution",
            bare_name="fuzz-adv-smallwrite-bare",
            masked_name="fuzz-adv-smallwrite-masked",
            masked_keys=frozenset({"small_write", "misaligned_write"}),
            description=(
                "bulk aligned 1 MiB writes dilute a false-sharing record stream "
                "below the small-request and alignment thresholds"
            ),
        ),
        _adv_small_write_bare,
        _adv_small_write_masked,
        frozenset({"small_write", "misaligned_write", "no_collective_write"}),
    ),
    (
        AdversarialPair(
            name="metadata-dilution",
            bare_name="fuzz-adv-metadata-bare",
            masked_name="fuzz-adv-metadata-masked",
            masked_keys=frozenset({"high_metadata_load"}),
            description=(
                "a bulk write stream dilutes a metadata flood below the "
                "40% metadata-time fraction"
            ),
        ),
        _adv_metadata_bare,
        _adv_metadata_masked,
        frozenset({"high_metadata_load", "no_mpi"}),
    ),
    (
        AdversarialPair(
            name="random-read-dilution",
            bare_name="fuzz-adv-randread-bare",
            masked_name="fuzz-adv-randread-masked",
            masked_keys=frozenset({"random_read", "small_read"}),
            description=(
                "a sequential scan lifts the sequential-read fraction over the "
                "randomness threshold and dilutes the small-request fraction"
            ),
        ),
        _adv_random_read_bare,
        _adv_random_read_masked,
        frozenset({"random_read", "small_read", "shared_file_access", "no_mpi"}),
    ),
)

ADVERSARIAL_PAIRS: tuple[AdversarialPair, ...] = tuple(spec[0] for spec in _ADVERSARIAL_SPECS)


def adversarial_scenarios() -> list[Scenario]:
    """Both twins of every adversarial pair, as registrable scenarios.

    The masked twin keeps the *injected* labels: its pathology is still
    present, the counters just no longer show it.  The resulting recall
    gap is the point — ``benchmarks/eval_gate.py`` asserts it holds.
    """
    scenarios: list[Scenario] = []
    for pair, bare_builder, masked_builder, bare_labels in _ADVERSARIAL_SPECS:
        scenarios.append(
            Scenario(
                name=pair.bare_name,
                source=FUZZ_SOURCE,
                builder=bare_builder,
                root_causes=bare_labels,
                difficulty="medium",
                tags=ADVERSARIAL_TAGS,
                description=f"{pair.description} (bare half: no mask applied)",
            )
        )
        scenarios.append(
            Scenario(
                name=pair.masked_name,
                source=FUZZ_SOURCE,
                builder=masked_builder,
                root_causes=bare_labels,
                difficulty="medium",
                tags=ADVERSARIAL_TAGS,
                description=f"{pair.description} (masked half: known detection gap)",
            )
        )
    return scenarios


# --------------------------------------------------------------------------
# Intensity ramps: binary-search a rule's detection threshold
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RampSpec:
    """A family of workloads parameterized by masking intensity ``t`` in [0, 1].

    At ``t = 0`` the pathology is undiluted and ``issue_key`` must be
    detected; at ``t = 1`` the mask is strong enough that it must not be.
    """

    name: str
    issue_key: str
    description: str
    build: Callable[[float], Workload]


@dataclass(frozen=True)
class ThresholdResult:
    """Bracketing result of a threshold search over one ramp."""

    ramp: str
    issue_key: str
    detected_at: float  # highest intensity still detected
    masked_at: float  # lowest intensity observed masked

    @property
    def threshold(self) -> float:
        return (self.detected_at + self.masked_at) / 2.0


def _ramp_workload(name: str, phases: tuple[PhaseFn, ...], *, uses_mpi: bool = True) -> Workload:
    return Workload(
        name=name,
        exe="/opt/fuzz/ramp",
        nprocs=8,
        num_osts=4,
        default_stripe_width=4,
        uses_mpi=uses_mpi,
        phases=phases,
    )


def _ramp_small_write(t: float) -> Workload:
    mask = round(t * 240)
    phases: list[PhaseFn] = [false_sharing_phase(f"{_ADV_ROOT}/ramp-records.dat", 1024, 80)]
    if mask:
        phases.append(data_phase(f"{_ADV_ROOT}/ramp-bulk.dat", "write", 1 * MiB, mask, api="mpiio"))
    return _ramp_workload("fuzz-ramp-smallwrite", tuple(phases))


def _ramp_metadata(t: float) -> Workload:
    mask = round(t * 500)
    phases: list[PhaseFn] = [metadata_churn_phase(f"{_ADV_ROOT}/ramp-staging", 42, cycles=2)]
    if mask:
        phases.append(data_phase(f"{_ADV_ROOT}/ramp-bulk.dat", "write", 1 * MiB, mask))
    return _ramp_workload("fuzz-ramp-metadata", tuple(phases), uses_mpi=False)


def _ramp_random_read(t: float) -> Workload:
    mask = round(t * 240)
    phases: list[PhaseFn] = [
        data_phase(
            f"{_ADV_ROOT}/ramp-lookup.dat", "read", 4 * KiB, 80, layout="shared", pattern="random"
        )
    ]
    if mask:
        phases.append(data_phase(f"{_ADV_ROOT}/ramp-scan.dat", "read", 1 * MiB, mask, layout="shared"))
    return _ramp_workload("fuzz-ramp-randread", tuple(phases), uses_mpi=False)


RAMPS: tuple[RampSpec, ...] = (
    RampSpec(
        name="small-write-dilution",
        issue_key="small_write",
        description="aligned 1 MiB writes diluting a 1 KiB false-sharing stream",
        build=_ramp_small_write,
    ),
    RampSpec(
        name="metadata-dilution",
        issue_key="high_metadata_load",
        description="bulk data time diluting a fixed metadata flood",
        build=_ramp_metadata,
    ),
    RampSpec(
        name="random-read-dilution",
        issue_key="random_read",
        description="a sequential scan diluting a shuffled 4 KiB read stream",
        build=_ramp_random_read,
    ),
)


def find_detection_threshold(
    ramp: RampSpec,
    detect: Callable[[object], set[str]],
    *,
    seed: int = 0,
    lo: float = 0.0,
    hi: float = 1.0,
    iterations: int = 6,
) -> ThresholdResult:
    """Binary-search the masking intensity at which ``ramp.issue_key`` vanishes.

    ``detect`` maps a built :class:`~repro.darshan.log.DarshanLog` to the
    set of detected issue keys (injected, so the workload layer stays
    independent of the evaluation layer).  Requires detection at ``lo``
    and non-detection at ``hi``; returns the final bracket.
    """

    def detected(t: float) -> bool:
        log, _ = ramp.build(t).run(seed=seed)
        return ramp.issue_key in detect(log)

    if not detected(lo):
        raise ValueError(f"ramp {ramp.name!r}: {ramp.issue_key!r} not detected at intensity {lo}")
    if detected(hi):
        raise ValueError(f"ramp {ramp.name!r}: {ramp.issue_key!r} still detected at intensity {hi}")
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if detected(mid):
            lo = mid
        else:
            hi = mid
    return ThresholdResult(ramp=ramp.name, issue_key=ramp.issue_key, detected_at=lo, masked_at=hi)


# --------------------------------------------------------------------------
# Default registration: the pinned fuzz tier
# --------------------------------------------------------------------------


def register_default_fuzz_scenarios() -> None:
    """Register the pinned-seed fuzz tier (compositions + adversarial twins)."""
    for scenario in generate_scenarios():
        register_scenario(scenario)
    for scenario in adversarial_scenarios():
        register_scenario(scenario)


register_default_fuzz_scenarios()
