"""The extended pathology tier: 21 scenarios beyond the paper's TraceBench.

TraceBench's 40 traces cover the issue taxonomy but only a slice of how
those issues arise in production.  Each workload here models one pathology
the related diagnosis literature calls out — false sharing, metadata
churn, stragglers, bursty defensive I/O, read-modify-write, fsync floods,
redundant re-reads at scale, stdio/MPI-IO interference — plus one clean
baseline control whose ground truth is *no issue at all* (a diagnoser
that cannot stay quiet on it is over-triggering).

The hard tier (path13-path17) is deliberately *counter-invisible*: byte
and operation counters stay balanced and clean, and the ground truth —
compute-bound stragglers, lock convoys, interference stalls, slow-OST
hotspots, producer/consumer hand-off stalls — is only recoverable from
the DXT temporal evidence channel (see docs/evidence.md).

The server-attribution tier (path18-path21) goes one level deeper: its
ground truth is only recoverable from the DXT ``ost`` column (which
server each segment waited on).  All four run the same aligned
stripe-wide access shape, so byte counters, per-rank reductions, and
even the file-level temporal kernels see nothing — what differs is
*which OST* the time went to: a single degraded server (path18), an MDS
problem next to healthy data servers (path19), a restriped control on
the same degraded cluster (path20), and a multi-server degradation that
masquerades as rank imbalance without attribution (path21).

Every workload registers a :class:`~repro.workloads.scenarios.Scenario`
tagged ``pathology`` (plus a theme tag), so the harness, batch runner,
and CLI pick them up with no further wiring:
``python -m repro evaluate --scenarios pathology``.
"""

from __future__ import annotations

from repro.sim.timing import PerfModel
from repro.util.units import KiB, MiB
from repro.workloads.base import Workload
from repro.workloads.patterns import (
    checkpoint_burst_phase,
    compute_straggler_phase,
    data_phase,
    false_sharing_phase,
    fsync_per_write_phase,
    interference_stall_phase,
    lock_convoy_phase,
    metadata_churn_phase,
    producer_consumer_phase,
    read_modify_write_phase,
    repetitive_read_phase,
    stdio_phase,
    straggler_phase,
)
from repro.workloads.scenarios import Scenario, register_scenario

__all__ = ["PATHOLOGY_BUILDERS"]


def path01_random_small_reads() -> Workload:
    """16 MPI-less processes issue 4 KiB reads in shuffled order on one file."""
    return Workload(
        name="path01-random-small-reads",
        exe="/home/user/pathology/random_small_reads",
        nprocs=16,
        jobid=901,
        uses_mpi=False,
        num_osts=4,
        default_stripe_width=4,
        phases=(
            data_phase(
                "/scratch/path01/lookup.db",
                "read",
                xfer=4 * KiB,
                count_per_rank=800,
                api="posix",
                layout="shared",
                pattern="random",
            ),
        ),
    )


def path02_false_sharing() -> Workload:
    """Ranks interleave 1 KiB records inside shared file-system blocks."""
    return Workload(
        name="path02-false-sharing",
        exe="/home/user/pathology/false_sharing",
        nprocs=8,
        jobid=902,
        num_osts=4,
        default_stripe_width=4,
        phases=(
            false_sharing_phase(
                "/scratch/path02/cells.dat",
                record_bytes=1024,
                count_per_rank=2500,
                api="mpiio",
            ),
        ),
    )


def path03_metadata_storm() -> Workload:
    """16 ranks create then repeatedly reopen/stat 250 files each."""
    return Workload(
        name="path03-metadata-storm",
        exe="/home/user/pathology/metadata_storm",
        nprocs=16,
        jobid=903,
        uses_mpi=False,
        phases=(
            metadata_churn_phase(
                "/scratch/path03/staging",
                files_per_rank=250,
                cycles=2,
            ),
        ),
    )


def path04_straggler_rank() -> Workload:
    """Byte-balanced shared-file write where rank 0 moves its share in
    4 KiB pieces: the imbalance lives in time, not volume."""
    return Workload(
        name="path04-straggler-rank",
        exe="/home/user/pathology/straggler_rank",
        nprocs=8,
        jobid=904,
        num_osts=4,
        default_stripe_width=4,
        phases=(
            straggler_phase(
                "/scratch/path04/field.dat",
                xfer=1 * MiB,
                count_per_rank=24,
                straggler_rank=0,
                slow_factor=256,
                api="mpiio",
            ),
        ),
    )


def path05_bursty_checkpoint() -> Workload:
    """Defensive N-to-1 checkpointing: write bursts between compute phases."""
    return Workload(
        name="path05-bursty-checkpoint",
        exe="/home/user/pathology/bursty_checkpoint",
        nprocs=16,
        jobid=905,
        num_osts=8,
        default_stripe_width=8,
        phases=(
            checkpoint_burst_phase(
                "/scratch/path05/ckpt.dat",
                xfer=256 * KiB,
                writes_per_burst=8,
                bursts=4,
                compute_seconds=10.0,
                api="mpiio",
            ),
        ),
    )


def path06_read_modify_write() -> Workload:
    """In-place 1000-byte record updates: read, modify, write back."""
    return Workload(
        name="path06-read-modify-write",
        exe="/home/user/pathology/read_modify_write",
        nprocs=8,
        jobid=906,
        num_osts=4,
        default_stripe_width=4,
        phases=(
            read_modify_write_phase(
                "/scratch/path06/records.dat",
                record_bytes=1000,
                count_per_rank=2000,
                api="mpiio",
                layout="fpp",
            ),
        ),
    )


def path07_misaligned_stride() -> Workload:
    """Large strided shared-file writes shifted off every stripe boundary."""
    return Workload(
        name="path07-misaligned-stride",
        exe="/home/user/pathology/misaligned_stride",
        nprocs=16,
        jobid=907,
        num_osts=8,
        default_stripe_width=8,
        phases=(
            data_phase(
                "/scratch/path07/slab.dat",
                "write",
                xfer=1 * MiB,
                count_per_rank=6,
                api="mpiio",
                layout="shared",
                pattern="strided",
                unaligned_shim=2080,
                mem_aligned=False,
            ),
        ),
    )


def path08_tiny_collectives() -> Workload:
    """Collective I/O used correctly — but with 32 KiB per-rank payloads."""
    return Workload(
        name="path08-tiny-collectives",
        exe="/home/user/pathology/tiny_collectives",
        nprocs=16,
        jobid=908,
        num_osts=8,
        default_stripe_width=8,
        # Stripe size tuned down to the aggregated chunk (4 ranks x 32 KiB)
        # so collective buffering emits aligned, advancing POSIX writes.
        stripe_overrides={"/scratch/path08/frames.dat": (128 * KiB, 8)},
        phases=(
            data_phase(
                "/scratch/path08/frames.dat",
                "write",
                xfer=32 * KiB,
                count_per_rank=40,
                api="mpiio",
                collective=True,
                layout="shared",
                pattern="strided",
            ),
        ),
    )


def path09_fsync_per_write() -> Workload:
    """4 MPI-less processes fsync after every 4 KiB append."""
    return Workload(
        name="path09-fsync-per-write",
        exe="/home/user/pathology/fsync_per_write",
        nprocs=4,
        jobid=909,
        uses_mpi=False,
        # Syncs wait on device durability, not just an MDT round-trip.
        perf=PerfModel(sync_latency=2e-3),
        phases=(
            fsync_per_write_phase(
                "/scratch/path09/journal.log",
                xfer=4 * KiB,
                count_per_rank=900,
                api="posix",
                layout="fpp",
            ),
        ),
    )


def path10_redundant_reread() -> Workload:
    """Every rank re-reads the same 4 MiB input ten times over."""
    return Workload(
        name="path10-redundant-reread",
        exe="/home/user/pathology/redundant_reread",
        nprocs=8,
        jobid=910,
        uses_mpi=False,
        num_osts=4,
        default_stripe_width=4,
        phases=(
            repetitive_read_phase(
                "/scratch/path10/model.bin",
                region_bytes=4 * MiB,
                xfer=1 * MiB,
                repeats=10,
            ),
        ),
    )


def path11_stdio_mpiio_mix() -> Workload:
    """Bulk MPI-IO output interleaved with a heavy stdio logging stream."""
    return Workload(
        name="path11-stdio-mpiio-mix",
        exe="/home/user/pathology/stdio_mpiio_mix",
        nprocs=4,
        jobid=911,
        num_osts=8,
        default_stripe_width=2,
        phases=(
            data_phase(
                "/scratch/path11/field.dat",
                "write",
                xfer=1 * MiB,
                count_per_rank=30,
                api="mpiio",
                layout="fpp",
            ),
            stdio_phase(
                "/scratch/path11/trace.log",
                "write",
                xfer=8 * KiB,
                count_per_rank=2000,
                layout="fpp",
            ),
        ),
    )


def path12_clean_baseline() -> Workload:
    """The control: aligned collective writes over wide stripes, no issue."""
    return Workload(
        name="path12-clean-baseline",
        exe="/home/user/pathology/clean_baseline",
        nprocs=8,
        jobid=912,
        num_osts=8,
        default_stripe_width=8,
        phases=tuple(
            data_phase(
                f"/scratch/path12/out{i}.dat",
                "write",
                xfer=1 * MiB,
                count_per_rank=1,
                api="mpiio",
                collective=True,
                layout="shared",
            )
            for i in range(3)
        ),
    )


def path13_straggler_compute() -> Workload:
    """A straggler even the time counters miss: rank 0 writes the same
    volume in the same pieces, but stalls in compute before every write."""
    return Workload(
        name="path13-straggler-compute",
        exe="/home/user/pathology/straggler_compute",
        nprocs=8,
        jobid=913,
        num_osts=4,
        default_stripe_width=4,
        phases=(
            compute_straggler_phase(
                "/scratch/path13/field.dat",
                xfer=1 * MiB,
                count_per_rank=24,
                straggler_rank=0,
                stall_seconds=0.5,
                api="mpiio",
            ),
        ),
    )


def path14_lock_convoy() -> Workload:
    """Shared-file writers serialized by extent-lock handoffs."""
    return Workload(
        name="path14-lock-convoy",
        exe="/home/user/pathology/lock_convoy",
        nprocs=8,
        jobid=914,
        num_osts=4,
        default_stripe_width=4,
        phases=(
            lock_convoy_phase(
                "/scratch/path14/cells.dat",
                xfer=64 * KiB,
                rounds=80,
                api="mpiio",
            ),
        ),
    )


def path15_bursty_interference() -> Workload:
    """Textbook-clean sequential writes, repeatedly frozen by outside traffic."""
    return Workload(
        name="path15-bursty-interference",
        exe="/home/user/pathology/bursty_interference",
        nprocs=8,
        jobid=915,
        uses_mpi=False,
        num_osts=4,
        default_stripe_width=4,
        phases=(
            interference_stall_phase(
                "/scratch/path15/stream.dat",
                xfer=1 * MiB,
                writes_per_window=6,
                stalls=9,
                stall_seconds=0.6,
            ),
        ),
    )


def path16_slow_ost_hotspot() -> Workload:
    """One degraded OST: balanced traffic, but files striped over OST 3
    are served 4x slower.  Every byte counter looks healthy."""
    path = "/scratch/path16/out.dat"
    return Workload(
        name="path16-slow-ost-hotspot",
        exe="/home/user/pathology/slow_ost_hotspot",
        nprocs=8,
        jobid=916,
        num_osts=8,
        default_stripe_width=2,
        # Pin file r's two stripes to OSTs (r, r+1): traffic spreads evenly
        # over all 8 OSTs, and every 1 MiB request on files 2 and 3 must
        # touch the degraded OST 3.
        stripe_overrides={f"{path}.{r:05d}": (512 * KiB, 2, r) for r in range(8)},
        slow_osts={3: 4.0},
        phases=(
            data_phase(
                path,
                "write",
                xfer=1 * MiB,
                count_per_rank=24,
                api="mpiio",
                layout="fpp",
            ),
        ),
    )


def path17_producer_consumer() -> Workload:
    """Strict produce/hand-off/consume rounds over one staging file."""
    return Workload(
        name="path17-producer-consumer",
        exe="/home/user/pathology/producer_consumer",
        nprocs=8,
        jobid=917,
        num_osts=4,
        default_stripe_width=4,
        phases=(
            producer_consumer_phase(
                "/scratch/path17/staging.dat",
                xfer=1 * MiB,
                rounds=5,
                items_per_round=8,
                api="mpiio",
            ),
        ),
    )


def path18_hot_ost() -> Workload:
    """One degraded OST behind a stripe-wide shared file.  Every rank's
    requests cycle over all 8 OSTs, so bytes, ranks, and per-file rates
    all stay balanced — only the per-OST attribution shows the time
    concentrating on OST 3."""
    path = "/scratch/path18/blocks.dat"
    return Workload(
        name="path18-hot-ost",
        exe="/home/user/pathology/hot_ost",
        nprocs=8,
        jobid=918,
        num_osts=8,
        default_stripe_width=8,
        # Aligned stripe-sized requests on a pinned layout: each request
        # touches exactly one OST, so segment attribution is exact.
        stripe_overrides={path: (1 * MiB, 8, 0)},
        slow_osts={3: 4.0},
        phases=(
            data_phase(
                path,
                "write",
                xfer=1 * MiB,
                count_per_rank=24,
                api="mpiio",
                layout="shared",
            ),
        ),
    )


def path19_mds_vs_oss() -> Workload:
    """MDS-vs-OSS contrast: a metadata-server flood *and* one degraded
    data server in the same job.  The metadata half grounds through
    counters (F_META_TIME), the OSS half only through the ost column —
    the channel split that tells an admin which subsystem to chase."""
    path = "/scratch/path19/frames.dat"
    return Workload(
        name="path19-mds-vs-oss",
        exe="/home/user/pathology/mds_vs_oss",
        nprocs=8,
        jobid=919,
        num_osts=8,
        default_stripe_width=8,
        stripe_overrides={path: (1 * MiB, 8, 0)},
        slow_osts={5: 4.0},
        phases=(
            metadata_churn_phase(
                "/scratch/path19/staging",
                files_per_rank=120,
                cycles=2,
            ),
            data_phase(
                path,
                "write",
                xfer=1 * MiB,
                count_per_rank=24,
                api="mpiio",
                layout="shared",
            ),
        ),
    )


def path20_rebalanced_stripe() -> Workload:
    """The control of the attribution tier: the same cluster still has a
    degraded OST 3, but the file was restriped around it (the path18
    recommendation, applied) — the per-OST channel must stay quiet."""
    path = "/scratch/path20/blocks.dat"
    return Workload(
        name="path20-rebalanced-stripe",
        exe="/home/user/pathology/rebalanced_stripe",
        nprocs=8,
        jobid=920,
        num_osts=8,
        default_stripe_width=8,
        # Width 7 starting at OST 4 → OSTs (4,5,6,7,0,1,2): the degraded
        # OST 3 serves no stripe of this file.
        stripe_overrides={path: (1 * MiB, 7, 4)},
        slow_osts={3: 4.0},
        phases=(
            data_phase(
                path,
                "write",
                xfer=1 * MiB,
                count_per_rank=24,
                api="mpiio",
                layout="shared",
            ),
        ),
    )


def path21_multi_ost_degradation() -> Workload:
    """Two degraded OSTs under a strided shared write.  The strided
    mapping pins rank r to OST r, so without attribution the timeline
    reads as two straggler ranks — the misdiagnosis the ost column
    exists to prevent (the ranks are slow because their servers are)."""
    path = "/scratch/path21/cells.dat"
    return Workload(
        name="path21-multi-ost-degradation",
        exe="/home/user/pathology/multi_ost_degradation",
        nprocs=8,
        jobid=921,
        num_osts=8,
        default_stripe_width=8,
        stripe_overrides={path: (1 * MiB, 8, 0)},
        slow_osts={2: 4.0, 5: 4.0},
        phases=(
            data_phase(
                path,
                "write",
                xfer=1 * MiB,
                count_per_rank=24,
                api="mpiio",
                layout="shared",
                pattern="strided",
            ),
        ),
    )


PATHOLOGY_BUILDERS = {
    "path01-random-small-reads": path01_random_small_reads,
    "path02-false-sharing": path02_false_sharing,
    "path03-metadata-storm": path03_metadata_storm,
    "path04-straggler-rank": path04_straggler_rank,
    "path05-bursty-checkpoint": path05_bursty_checkpoint,
    "path06-read-modify-write": path06_read_modify_write,
    "path07-misaligned-stride": path07_misaligned_stride,
    "path08-tiny-collectives": path08_tiny_collectives,
    "path09-fsync-per-write": path09_fsync_per_write,
    "path10-redundant-reread": path10_redundant_reread,
    "path11-stdio-mpiio-mix": path11_stdio_mpiio_mix,
    "path12-clean-baseline": path12_clean_baseline,
    "path13-straggler-compute": path13_straggler_compute,
    "path14-lock-convoy": path14_lock_convoy,
    "path15-bursty-interference": path15_bursty_interference,
    "path16-slow-ost-hotspot": path16_slow_ost_hotspot,
    "path17-producer-consumer": path17_producer_consumer,
    "path18-hot-ost": path18_hot_ost,
    "path19-mds-vs-oss": path19_mds_vs_oss,
    "path20-rebalanced-stripe": path20_rebalanced_stripe,
    "path21-multi-ost-degradation": path21_multi_ost_degradation,
}


def _scenario(
    name: str,
    difficulty: str,
    theme: str,
    description: str,
    *root_causes: str,
) -> None:
    register_scenario(
        Scenario(
            name=name,
            source="pathology",
            builder=PATHOLOGY_BUILDERS[name],
            root_causes=frozenset(root_causes),
            difficulty=difficulty,
            tags=("pathology", theme),
            description=description,
        )
    )


_scenario(
    "path01-random-small-reads", "easy", "small-io",
    "shuffled 4 KiB reads from 16 MPI-less processes on one shared file",
    "random_read", "small_read", "shared_file_access", "no_mpi",
)
_scenario(
    "path02-false-sharing", "medium", "locking",
    "rank-interleaved 1 KiB records contending inside shared blocks",
    "small_write", "misaligned_write", "shared_file_access", "no_collective_write",
)
_scenario(
    "path03-metadata-storm", "easy", "metadata",
    "create/stat/reopen flood over 4000 files with no data at all",
    "high_metadata_load", "no_mpi",
)
_scenario(
    "path04-straggler-rank", "hard", "imbalance",
    "byte-balanced shared write whose rank 0 trickles its share in 4 KiB pieces",
    "rank_imbalance", "shared_file_access", "small_write", "no_collective_write",
)
_scenario(
    "path05-bursty-checkpoint", "medium", "checkpoint",
    "N-to-1 checkpoint bursts with fsync between compute phases",
    "shared_file_access", "no_collective_write",
)
_scenario(
    "path06-read-modify-write", "medium", "rmw",
    "in-place 1000-byte record updates (read, modify, write back)",
    "small_read", "small_write", "misaligned_read", "misaligned_write",
    "random_write", "no_collective_read", "no_collective_write",
)
_scenario(
    "path07-misaligned-stride", "medium", "alignment",
    "strided 1 MiB shared-file writes shifted 2080 bytes off every boundary",
    "misaligned_write", "shared_file_access", "no_collective_write",
)
_scenario(
    "path08-tiny-collectives", "hard", "collective",
    "collective I/O done right, except each rank contributes only 32 KiB",
    "small_write", "shared_file_access",
)
_scenario(
    "path09-fsync-per-write", "easy", "sync",
    "an fsync after every single 4 KiB append",
    "small_write", "high_metadata_load", "no_mpi",
)
_scenario(
    "path10-redundant-reread", "easy", "caching",
    "eight processes re-read the same 4 MiB input ten times each",
    "repetitive_read", "shared_file_access", "no_mpi",
)
_scenario(
    "path11-stdio-mpiio-mix", "medium", "interference",
    "bulk MPI-IO output competing with a heavy stdio logging stream",
    "low_level_write", "no_collective_write",
)
_scenario(
    "path12-clean-baseline", "control", "control",
    "aligned collective writes over wide stripes — nothing to diagnose",
)
# -- the counter-invisible hard tier (temporal ground truth) ---------------
_scenario(
    "path13-straggler-compute", "hard", "imbalance",
    "byte- and time-counter-balanced shared write whose rank 0 stalls in "
    "compute before every request",
    "rank_imbalance", "shared_file_access", "no_collective_write",
)
_scenario(
    "path14-lock-convoy", "hard", "locking",
    "shared-file writers serialized one rank at a time by extent-lock handoffs",
    "lock_contention", "shared_file_access", "small_write", "no_collective_write",
)
_scenario(
    "path15-bursty-interference", "hard", "interference",
    "clean sequential streams frozen nine times by cross-job interference",
    "io_stall", "no_mpi",
)
_scenario(
    "path16-slow-ost-hotspot", "hard", "hotspot",
    "perfectly balanced fpp writes with one degraded OST serving its files 4x slower",
    "server_imbalance", "no_collective_write",
)
_scenario(
    "path17-producer-consumer", "hard", "pipeline",
    "strict produce/hand-off/consume rounds where each half of the job idles "
    "while the other works",
    "io_stall", "shared_file_access", "no_collective_read", "no_collective_write",
)
# -- the server-attribution tier (per-OST ground truth) --------------------
_scenario(
    "path18-hot-ost", "hard", "hotspot",
    "stripe-wide shared write with one degraded OST absorbing the service "
    "time behind perfectly balanced traffic",
    "server_imbalance", "shared_file_access", "no_collective_write",
)
_scenario(
    "path19-mds-vs-oss", "hard", "hotspot",
    "a metadata-server flood next to one degraded data server — each "
    "subsystem grounded through its own evidence channel",
    "high_metadata_load", "server_imbalance", "shared_file_access",
    "no_collective_write",
)
_scenario(
    "path20-rebalanced-stripe", "control", "hotspot",
    "the same degraded cluster with the file restriped around the bad OST "
    "— the attribution channel must stay quiet",
    "shared_file_access", "no_collective_write",
)
_scenario(
    "path21-multi-ost-degradation", "hard", "hotspot",
    "two degraded OSTs under a strided shared write that masquerade as two "
    "straggler ranks without server attribution",
    "server_imbalance", "shared_file_access", "no_collective_write",
)
