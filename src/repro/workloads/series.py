"""Built-in series scenarios: run sequences with mid-series degradation.

Each series sequences two registered single-trace scenarios — a healthy
base and a degraded variant — with a declared inflection run, so the
longitudinal channel (:mod:`repro.regression`) has exact ground truth to
grade against: *which* run the profile departed at, and *which* issues
the degradation injected.  The control series never degrades and must
stay below the drift threshold for its whole length.

Series-level ``root_causes`` are always ``trend_regression`` plus the
issues the degraded runs add over the base runs; ``benchmarks/eval_gate.py``
re-derives that set from the expert rules on every CI run, so these
declarations cannot silently drift from what the rules actually detect.
"""

from __future__ import annotations

from repro.workloads.scenarios import SeriesScenario, register_series_scenario

__all__ = ["SERIES_NAMES"]


def _series(
    name: str,
    base: str,
    degraded: str,
    inflection_run: int | None,
    difficulty: str,
    theme: str,
    description: str,
    *injected: str,
) -> None:
    causes = set(injected)
    if inflection_run is not None:
        causes.add("trend_regression")
    register_series_scenario(
        SeriesScenario(
            name=name,
            source="series",
            base=base,
            degraded=degraded,
            n_runs=8,
            inflection_run=inflection_run,
            root_causes=frozenset(causes),
            baseline_runs=3,
            difficulty=difficulty,
            tags=("series", theme),
            description=description,
        )
    )


_series(
    "series01-ost-degradation", "path20-rebalanced-stripe", "path18-hot-ost", 5,
    "hard", "hotspot",
    "a well-restriped cluster whose file lands back on a degraded OST at run 5",
    "server_imbalance",
)
_series(
    "series02-metadata-creep", "path12-clean-baseline", "path03-metadata-storm", 4,
    "medium", "metadata",
    "clean collective output replaced by a create/stat flood from run 4 on",
    "high_metadata_load", "no_mpi",
)
_series(
    "series03-locking-onset", "path12-clean-baseline", "path14-lock-convoy", 5,
    "hard", "locking",
    "healthy aligned writes that fall into extent-lock handoffs at run 5",
    "lock_contention", "shared_file_access", "small_write", "no_collective_write",
)
_series(
    "series04-interference-onset", "path12-clean-baseline", "path15-bursty-interference", 6,
    "hard", "interference",
    "a stable job that starts stalling under cross-job interference at run 6",
    "io_stall", "no_mpi",
)
_series(
    "series05-steady-control", "path12-clean-baseline", "path12-clean-baseline", None,
    "control", "control",
    "eight healthy runs with only seed-level variation — drift must stay quiet",
)

SERIES_NAMES: tuple[str, ...] = (
    "series01-ost-degradation",
    "series02-metadata-creep",
    "series03-locking-onset",
    "series04-interference-onset",
    "series05-steady-control",
)
