"""Composable I/O phase generators.

Every TraceBench issue corresponds to an operation-stream behaviour; these
factories produce those behaviours.  A phase factory returns a closure that
maps a :class:`~repro.workloads.base.WorkloadContext` to an op stream, so
workloads are declarative compositions.

Conventions:

* ``layout='fpp'`` → file-per-process (``path`` gets ``.rank`` appended);
  ``layout='shared'`` → all ranks touch one file (segmented by rank).
* ``pattern='seq'`` → each rank walks its region in order;
  ``'strided'`` → ranks interleave block-by-block across the file (classic
  N-to-1 strided access); ``'random'`` → each rank visits its region's
  blocks in a shuffled order.
* ``unaligned_shim`` shifts every offset by a constant, defeating both
  file and stripe alignment (Darshan's ``POSIX_FILE_NOT_ALIGNED``).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.sim.ops import API, IOOp, OpKind
from repro.workloads.base import PhaseFn, WorkloadContext

__all__ = [
    "data_phase",
    "metadata_phase",
    "repetitive_read_phase",
    "imbalanced_write_phase",
    "stdio_phase",
    "false_sharing_phase",
    "metadata_churn_phase",
    "checkpoint_burst_phase",
    "read_modify_write_phase",
    "fsync_per_write_phase",
    "straggler_phase",
    "compute_straggler_phase",
    "lock_convoy_phase",
    "interference_stall_phase",
    "producer_consumer_phase",
]

_API_MAP = {"posix": API.POSIX, "mpiio": API.MPIIO, "stdio": API.STDIO}


def _rank_paths(path: str, layout: str, nprocs: int) -> list[str]:
    if layout == "fpp":
        return [f"{path}.{r:05d}" for r in range(nprocs)]
    if layout == "shared":
        return [path] * nprocs
    raise ValueError(f"unknown layout {layout!r}")


def _offsets_for_rank(
    rank: int,
    nprocs: int,
    count: int,
    xfer: int,
    layout: str,
    pattern: str,
    rng: np.random.Generator,
) -> np.ndarray:
    """Byte offsets of each request of ``rank``, in issue order."""
    idx = np.arange(count, dtype=np.int64)
    if layout == "shared":
        if pattern == "strided":
            # Block i of rank r lands at (i*nprocs + r): ranks interleave.
            blocks = idx * nprocs + rank
        else:
            # Segmented: rank r owns blocks [r*count, (r+1)*count).
            blocks = rank * count + idx
    else:
        blocks = idx
    offsets = blocks * xfer
    if pattern == "random":
        offsets = rng.permutation(offsets)
    return offsets


def data_phase(
    path: str,
    direction: str,
    xfer: int,
    count_per_rank: int,
    *,
    api: str = "posix",
    collective: bool = False,
    layout: str = "fpp",
    pattern: str = "seq",
    unaligned_shim: int = 0,
    mem_aligned: bool = True,
    open_per_rank: bool = True,
    fsync: bool = False,
) -> PhaseFn:
    """A bulk read or write phase.

    ``direction`` is ``'read'`` or ``'write'``.  Collective phases must use
    the MPI-IO API; the runtime lowers them through collective buffering.
    """
    if direction not in ("read", "write"):
        raise ValueError("direction must be 'read' or 'write'")
    if collective and api != "mpiio":
        raise ValueError("collective phases require api='mpiio'")
    kind = OpKind.READ if direction == "read" else OpKind.WRITE
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        paths = _rank_paths(path, layout, ctx.nprocs)
        opened: set[tuple[int, str]] = set()
        per_rank_offsets = [
            _offsets_for_rank(r, ctx.nprocs, count_per_rank, xfer, layout, pattern, ctx.rng)
            for r in range(ctx.nprocs)
        ]
        for r in range(ctx.nprocs):
            if open_per_rank and (r, paths[r]) not in opened:
                opened.add((r, paths[r]))
                yield IOOp(
                    kind=OpKind.OPEN,
                    api=api_enum,
                    rank=r,
                    path=paths[r],
                    collective=collective,
                )
        # Interleave requests round-robin across ranks so the op stream
        # resembles a real parallel execution trace.
        for i in range(count_per_rank):
            for r in range(ctx.nprocs):
                yield IOOp(
                    kind=kind,
                    api=api_enum,
                    rank=r,
                    path=paths[r],
                    offset=int(per_rank_offsets[r][i]) + unaligned_shim,
                    size=xfer,
                    collective=collective,
                    mem_aligned=mem_aligned,
                )
        for r in range(ctx.nprocs):
            if fsync:
                yield IOOp(kind=OpKind.SYNC, api=api_enum, rank=r, path=paths[r])
            yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=paths[r])

    return phase


def metadata_phase(
    directory: str,
    files_per_rank: int,
    *,
    with_stat: bool = True,
    data_bytes: int = 0,
    api: str = "posix",
) -> PhaseFn:
    """A metadata-heavy phase: create/stat/touch many small files.

    Models mdtest and the *High Metadata Load* issue: per file, an open,
    an optional stat, an optional tiny write, and a close.
    """
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        for r in range(ctx.nprocs):
            for i in range(files_per_rank):
                fpath = f"{directory}/rank{r:04d}/f{i:06d}"
                yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=fpath)
                if with_stat:
                    yield IOOp(kind=OpKind.STAT, api=api_enum, rank=r, path=fpath)
                if data_bytes > 0:
                    yield IOOp(
                        kind=OpKind.WRITE,
                        api=api_enum,
                        rank=r,
                        path=fpath,
                        offset=0,
                        size=data_bytes,
                    )
                yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=fpath)

    return phase


def repetitive_read_phase(
    path: str,
    region_bytes: int,
    xfer: int,
    repeats: int,
    *,
    nranks: int | None = None,
) -> PhaseFn:
    """Re-read the same region ``repeats`` times (Repetitive Data Access).

    The Darshan signature is BYTES_READ far exceeding MAX_BYTE_READ + 1:
    the application moves the same bytes over and over.
    """

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        ranks = range(nranks if nranks is not None else ctx.nprocs)
        reads_per_pass = max(1, region_bytes // xfer)
        for r in ranks:
            yield IOOp(kind=OpKind.OPEN, api=API.POSIX, rank=r, path=path)
        for _ in range(repeats):
            for i in range(reads_per_pass):
                for r in ranks:
                    yield IOOp(
                        kind=OpKind.READ,
                        api=API.POSIX,
                        rank=r,
                        path=path,
                        offset=i * xfer,
                        size=xfer,
                    )
        for r in ranks:
            yield IOOp(kind=OpKind.CLOSE, api=API.POSIX, rank=r, path=path)

    return phase


def imbalanced_write_phase(
    path: str,
    xfer: int,
    total_count: int,
    *,
    heavy_rank: int = 0,
    heavy_share: float = 0.8,
    api: str = "posix",
    layout: str = "shared",
) -> PhaseFn:
    """A write phase where one rank issues a disproportionate share.

    Models *Rank Load Imbalance*: ``heavy_rank`` performs ``heavy_share``
    of all requests; remaining requests spread evenly.  With
    ``layout='shared'`` all ranks append to one file (rank imbalance shows
    up in the shared record's variance counters); with ``'fpp'`` each rank
    writes its own file (imbalance shows up across per-rank records).
    """
    if not 0.0 < heavy_share <= 1.0:
        raise ValueError("heavy_share must be in (0, 1]")
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        paths = _rank_paths(path, layout, ctx.nprocs)
        heavy_n = int(total_count * heavy_share)
        rest = total_count - heavy_n
        others = [r for r in range(ctx.nprocs) if r != heavy_rank] or [heavy_rank]
        counts = {r: 0 for r in range(ctx.nprocs)}
        counts[heavy_rank] = heavy_n
        for i in range(rest):
            counts[others[i % len(others)]] += 1
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=paths[r])
        shared_offset = 0
        for r in range(ctx.nprocs):
            local_offset = 0
            for _ in range(counts[r]):
                offset = shared_offset if layout == "shared" else local_offset
                yield IOOp(
                    kind=OpKind.WRITE,
                    api=api_enum,
                    rank=r,
                    path=paths[r],
                    offset=offset,
                    size=xfer,
                )
                shared_offset += xfer
                local_offset += xfer
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=paths[r])

    return phase


def false_sharing_phase(
    path: str,
    record_bytes: int,
    count_per_rank: int,
    *,
    api: str = "mpiio",
) -> PhaseFn:
    """Rank-interleaved sub-block records on one shared file.

    Record *i* of rank *r* lands at ``(i * nprocs + r) * record_bytes``, so
    neighbouring ranks write into the *same* file-system block — the classic
    false-sharing / extent-lock-contention pattern.  With ``record_bytes``
    below the block size most offsets are unaligned and every request is
    small.
    """
    if record_bytes <= 0:
        raise ValueError("record_bytes must be positive")
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=path)
        for i in range(count_per_rank):
            for r in range(ctx.nprocs):
                yield IOOp(
                    kind=OpKind.WRITE,
                    api=api_enum,
                    rank=r,
                    path=path,
                    offset=(i * ctx.nprocs + r) * record_bytes,
                    size=record_bytes,
                )
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=path)

    return phase


def metadata_churn_phase(
    directory: str,
    files_per_rank: int,
    *,
    cycles: int = 2,
    with_stat: bool = True,
    api: str = "posix",
) -> PhaseFn:
    """A create/stat/unlink-style flood: every file is reopened ``cycles``
    extra times after creation.

    Models checkpoint-cleanup and staging scripts that churn the metadata
    server with open/stat/close cycles carrying no data at all.
    """
    if cycles < 0:
        raise ValueError("cycles must be non-negative")
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        for pass_no in range(1 + cycles):
            for r in range(ctx.nprocs):
                for i in range(files_per_rank):
                    fpath = f"{directory}/rank{r:04d}/f{i:06d}"
                    yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=fpath)
                    if with_stat:
                        yield IOOp(kind=OpKind.STAT, api=api_enum, rank=r, path=fpath)
                    yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=fpath)

    return phase


def checkpoint_burst_phase(
    path: str,
    xfer: int,
    writes_per_burst: int,
    bursts: int,
    *,
    compute_seconds: float = 10.0,
    api: str = "mpiio",
    sync_each_burst: bool = True,
) -> PhaseFn:
    """Bursty N-to-1 checkpointing: write bursts separated by compute.

    Every burst, each rank appends ``writes_per_burst`` requests to its own
    contiguous segment of the shared checkpoint file, optionally syncs, then
    computes for ``compute_seconds`` before the next burst — the classic
    defensive-I/O timeline (quiet, spike, quiet, spike).
    """
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        seg = writes_per_burst * xfer
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=path)
        for b in range(bursts):
            for i in range(writes_per_burst):
                for r in range(ctx.nprocs):
                    yield IOOp(
                        kind=OpKind.WRITE,
                        api=api_enum,
                        rank=r,
                        path=path,
                        offset=(b * ctx.nprocs + r) * seg + i * xfer,
                        size=xfer,
                    )
            for r in range(ctx.nprocs):
                if sync_each_burst:
                    yield IOOp(kind=OpKind.SYNC, api=api_enum, rank=r, path=path)
                if compute_seconds > 0 and b < bursts - 1:
                    yield IOOp(
                        kind=OpKind.COMPUTE,
                        api=api_enum,
                        rank=r,
                        duration=compute_seconds,
                    )
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=path)

    return phase


def read_modify_write_phase(
    path: str,
    record_bytes: int,
    count_per_rank: int,
    *,
    api: str = "posix",
    layout: str = "fpp",
) -> PhaseFn:
    """Per record: read it, then write it back at the same offset.

    The write can never be sequential (its offset sits *before* the read's
    end), so read-modify-write shows up as heavy ``RW_SWITCHES`` plus a
    non-sequential write stream — exactly how an update-in-place workload
    looks in Darshan.
    """
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        paths = _rank_paths(path, layout, ctx.nprocs)
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=paths[r])
        for i in range(count_per_rank):
            for r in range(ctx.nprocs):
                offset = (
                    (i * ctx.nprocs + r) * record_bytes
                    if layout == "shared"
                    else i * record_bytes
                )
                yield IOOp(
                    kind=OpKind.READ,
                    api=api_enum,
                    rank=r,
                    path=paths[r],
                    offset=offset,
                    size=record_bytes,
                )
                yield IOOp(
                    kind=OpKind.WRITE,
                    api=api_enum,
                    rank=r,
                    path=paths[r],
                    offset=offset,
                    size=record_bytes,
                )
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=paths[r])

    return phase


def fsync_per_write_phase(
    path: str,
    xfer: int,
    count_per_rank: int,
    *,
    api: str = "posix",
    layout: str = "fpp",
) -> PhaseFn:
    """Every write is followed by its own fsync.

    Models paranoid durability (databases, naive logging): the sync flood
    turns a bandwidth problem into a metadata/commit-latency problem, with
    ``POSIX_FSYNCS`` tracking ``POSIX_WRITES`` one-for-one.
    """
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        paths = _rank_paths(path, layout, ctx.nprocs)
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=paths[r])
        for i in range(count_per_rank):
            for r in range(ctx.nprocs):
                offset = (i * ctx.nprocs + r) * xfer if layout == "shared" else i * xfer
                yield IOOp(
                    kind=OpKind.WRITE,
                    api=api_enum,
                    rank=r,
                    path=paths[r],
                    offset=offset,
                    size=xfer,
                )
                yield IOOp(kind=OpKind.SYNC, api=api_enum, rank=r, path=paths[r])
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=paths[r])

    return phase


def straggler_phase(
    path: str,
    xfer: int,
    count_per_rank: int,
    *,
    straggler_rank: int = 0,
    slow_factor: int = 64,
    api: str = "mpiio",
) -> PhaseFn:
    """One rank moves the same volume as its peers, but in tiny pieces.

    Every rank writes ``count_per_rank * xfer`` bytes into its segment of a
    shared file; ``straggler_rank`` issues each request as ``slow_factor``
    sub-requests of ``xfer / slow_factor`` bytes.  Byte volume stays
    perfectly balanced while per-op latency makes the straggler's I/O time
    dominate — the signature lives in ``*_F_SLOWEST_RANK_TIME``, not in the
    byte counters.
    """
    if slow_factor < 1 or xfer % slow_factor != 0:
        raise ValueError("slow_factor must divide xfer")
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=path)
        small = xfer // slow_factor
        for i in range(count_per_rank):
            for r in range(ctx.nprocs):
                base = (r * count_per_rank + i) * xfer
                if r == straggler_rank:
                    for j in range(slow_factor):
                        yield IOOp(
                            kind=OpKind.WRITE,
                            api=api_enum,
                            rank=r,
                            path=path,
                            offset=base + j * small,
                            size=small,
                        )
                else:
                    yield IOOp(
                        kind=OpKind.WRITE,
                        api=api_enum,
                        rank=r,
                        path=path,
                        offset=base,
                        size=xfer,
                    )
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=path)

    return phase


def compute_straggler_phase(
    path: str,
    xfer: int,
    count_per_rank: int,
    *,
    straggler_rank: int = 0,
    stall_seconds: float = 0.5,
    api: str = "mpiio",
) -> PhaseFn:
    """A straggler whose imbalance is invisible even to time counters.

    Every rank writes identical request counts and sizes into its segment
    of a shared file, but ``straggler_rank`` interleaves a compute stall
    before each of its requests (slow preprocessing, NUMA contention, a
    noisy neighbour on its node).  Byte counters stay balanced *and* the
    per-rank I/O-time counters stay balanced — compute never reaches
    Darshan — so the straggler exists only in the DXT timeline, where the
    slow rank's I/O window stretches far past its peers'.
    """
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=path)
        for i in range(count_per_rank):
            for r in range(ctx.nprocs):
                if r == straggler_rank:
                    yield IOOp(
                        kind=OpKind.COMPUTE, api=api_enum, rank=r, duration=stall_seconds
                    )
                yield IOOp(
                    kind=OpKind.WRITE,
                    api=api_enum,
                    rank=r,
                    path=path,
                    offset=(r * count_per_rank + i) * xfer,
                    size=xfer,
                )
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=path)

    return phase


def lock_convoy_phase(
    path: str,
    xfer: int,
    rounds: int,
    *,
    api: str = "mpiio",
) -> PhaseFn:
    """Extent-lock convoy: shared-file writers proceed one rank at a time.

    Each round the write "token" passes around all ranks — modelled with a
    job-wide barrier before every write, the way an extent-lock handoff
    serializes writers on real Lustre.  Per-rank bytes, op counts, and
    even per-rank I/O times stay perfectly balanced; what collapses is
    concurrency, visible only in the DXT timeline (mean operations in
    flight ~= 1 despite every rank being active).
    """
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        from repro.sim.ops import barrier

        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=path)
        for i in range(rounds):
            for r in range(ctx.nprocs):
                yield barrier()  # the lock handoff: wait for the holder
                yield IOOp(
                    kind=OpKind.WRITE,
                    api=api_enum,
                    rank=r,
                    path=path,
                    offset=(r * rounds + i) * xfer,
                    size=xfer,
                )
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=path)

    return phase


def interference_stall_phase(
    path: str,
    xfer: int,
    writes_per_window: int,
    stalls: int,
    *,
    stall_seconds: float = 0.6,
    api: str = "posix",
) -> PhaseFn:
    """Healthy sequential I/O repeatedly frozen by external interference.

    Every rank streams large sequential writes to its own file — textbook
    clean, and the counters say so — but ``stalls`` times during the run
    the whole job pauses for ``stall_seconds`` (another job saturating the
    shared OSTs, fabric congestion, a metadata server hiccup).  The
    repeated mid-run gaps exist only in the DXT timeline.
    """
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        paths = _rank_paths(path, "fpp", ctx.nprocs)
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=paths[r])
        offset = [0] * ctx.nprocs
        for window in range(stalls + 1):
            for _ in range(writes_per_window):
                for r in range(ctx.nprocs):
                    yield IOOp(
                        kind=OpKind.WRITE,
                        api=api_enum,
                        rank=r,
                        path=paths[r],
                        offset=offset[r],
                        size=xfer,
                    )
                    offset[r] += xfer
            if window < stalls:
                for r in range(ctx.nprocs):
                    yield IOOp(
                        kind=OpKind.COMPUTE, api=api_enum, rank=r, duration=stall_seconds
                    )
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=paths[r])

    return phase


def producer_consumer_phase(
    path: str,
    xfer: int,
    rounds: int,
    items_per_round: int,
    *,
    api: str = "mpiio",
) -> PhaseFn:
    """Strict producer/consumer hand-off over a shared staging file.

    The first half of the ranks write a round's worth of data, a barrier
    hands it off, the second half read it back, another barrier closes the
    round.  Each group idles while the other works — half the job's wall
    time is spent stalled — yet the counters only see a balanced mix of
    reads and writes on one shared file.  The alternating stall pattern
    lives purely in the DXT timeline.
    """
    api_enum = _API_MAP[api]

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        from repro.sim.ops import barrier

        half = max(1, ctx.nprocs // 2)
        producers = range(half)
        consumers = range(half, ctx.nprocs)
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.OPEN, api=api_enum, rank=r, path=path)
        for round_no in range(rounds):
            for i in range(items_per_round):
                for r in producers:
                    yield IOOp(
                        kind=OpKind.WRITE,
                        api=api_enum,
                        rank=r,
                        path=path,
                        offset=((round_no * half + r) * items_per_round + i) * xfer,
                        size=xfer,
                    )
            yield barrier()  # consumers may not read before the data exists
            for i in range(items_per_round):
                for r in consumers:
                    yield IOOp(
                        kind=OpKind.READ,
                        api=api_enum,
                        rank=r,
                        path=path,
                        offset=((round_no * half + (r - half) % half) * items_per_round + i)
                        * xfer,
                        size=xfer,
                    )
            yield barrier()  # producers reuse the buffers next round
        for r in range(ctx.nprocs):
            yield IOOp(kind=OpKind.CLOSE, api=api_enum, rank=r, path=path)

    return phase


def stdio_phase(
    path: str,
    direction: str,
    xfer: int,
    count_per_rank: int,
    *,
    layout: str = "fpp",
    ranks: Iterable[int] | None = None,
) -> PhaseFn:
    """Bulk I/O through the STDIO interface (Low-Level Library issue)."""
    if direction not in ("read", "write"):
        raise ValueError("direction must be 'read' or 'write'")
    kind = OpKind.READ if direction == "read" else OpKind.WRITE

    def phase(ctx: WorkloadContext) -> Iterator[IOOp]:
        use_ranks = list(ranks) if ranks is not None else list(range(ctx.nprocs))
        paths = _rank_paths(path, layout, ctx.nprocs)
        for r in use_ranks:
            yield IOOp(kind=OpKind.OPEN, api=API.STDIO, rank=r, path=paths[r])
            for i in range(count_per_rank):
                yield IOOp(
                    kind=OpKind.READ if kind is OpKind.READ else OpKind.WRITE,
                    api=API.STDIO,
                    rank=r,
                    path=paths[r],
                    offset=i * xfer,
                    size=xfer,
                )
            yield IOOp(kind=OpKind.SYNC, api=API.STDIO, rank=r, path=paths[r])
            yield IOOp(kind=OpKind.CLOSE, api=API.STDIO, rank=r, path=paths[r])

    return phase
